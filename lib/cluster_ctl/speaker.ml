(* The cluster BGP speaker (the ExaBGP role).

   It terminates every external eBGP peering of every cluster member —
   while preserving the member's AS identity on the wire — and relays
   routing information between the legacy neighbors and the controller.
   Messages physically travel encapsulated over the speaker's link to the
   member's border switch (Switch.handle_control forwards them out).

   The speaker keeps a per-session Adj-RIB-Out so the controller's
   (re)announcements are deduplicated, and optionally paces announcements
   with an MRAI like a conventional BGP implementation would (off by
   default — ExaBGP emits updates as instructed; the controller's delayed
   recomputation is the rate limiter). *)

module Pm = Net.Ipv4.Prefix_map
module Pt = Net.Ipv4.Prefix_trie

type pending = Pend_announce of Bgp.Attrs.t | Pend_withdraw

type session_key = Net.Asn.t * Net.Asn.t (* member, neighbor *)

type session = {
  member : Net.Asn.t;
  neighbor : Net.Asn.t;
  member_addr : Net.Ipv4.addr;
  mutable established : bool;
  mutable open_sent : bool;
  mutable peer_hold : int; (* hold time (s) the neighbor proposed; 0 = none *)
  adj_out : Bgp.Attrs.t Pt.t;
  mrai : Bgp.Mrai.t option;
  (* Non-MRAI sessions buffer changes here within a batch scope; the
     scope close emits them as one packed UPDATE (latest state per
     prefix).  Always empty between scheduler events. *)
  mutable pending : pending Pm.t;
  mutable dirty : bool;
  mutable keepalive : Engine.Timer.t option;
  mutable hold : Engine.Timer.t option;
}

type stats = {
  mutable updates_in : int;
  mutable updates_out : int;
  mutable opens : int;
}

type t = {
  sim : Engine.Sim.t;
  node : Engine.Node.t;
  rng : Engine.Rng.t;
  liveness : Bgp.Config.keepalive option;
  send_relay : member:Net.Asn.t -> neighbor:Net.Asn.t -> Bgp.Message.t -> bool;
  sessions : (session_key, session) Hashtbl.t;
  mutable session_order : session_key list; (* deterministic iteration *)
  mutable on_update :
    member:Net.Asn.t -> neighbor:Net.Asn.t -> Bgp.Message.update -> unit;
  mutable on_session : member:Net.Asn.t -> neighbor:Net.Asn.t -> up:bool -> unit;
  stats : stats;
  hold_expirations : Engine.Metrics.Counter.t;
  (* Update batching, mirroring Router: controller-driven announcement
     bursts within one scheduler event leave as one UPDATE per session. *)
  mutable batch_depth : int;
  mutable any_dirty : bool;
}

let log t fmt = Engine.Sim.logf t.sim ~node:"speaker" ~category:"speaker" fmt

(* [create] is completed by [hook_lifecycle] at the bottom of this file. *)
let create_unhooked ?liveness ~sim ~send_relay () =
  let rng = Engine.Rng.split (Engine.Sim.rng sim) in
  {
    sim;
    node = Engine.Node.create ~kind:"speaker" ~rng sim ~name:"speaker";
    rng;
    liveness;
    send_relay;
    sessions = Hashtbl.create 32;
    session_order = [];
    on_update = (fun ~member:_ ~neighbor:_ _ -> ());
    on_session = (fun ~member:_ ~neighbor:_ ~up:_ -> ());
    stats = { updates_in = 0; updates_out = 0; opens = 0 };
    batch_depth = 0;
    any_dirty = false;
    hold_expirations =
      Engine.Metrics.counter (Engine.Sim.metrics sim)
        ~help:"sessions torn down by hold-timer expiry"
        ~labels:[ ("node", "speaker") ]
        "bgp_hold_expirations_total";
  }

let node t = t.node

let set_handlers t ~on_update ~on_session =
  t.on_update <- on_update;
  t.on_session <- on_session

let find t ~member ~neighbor = Hashtbl.find_opt t.sessions (member, neighbor)

let sessions t = t.session_order

let sessions_of t member =
  List.filter_map
    (fun (m, n) -> if Net.Asn.equal m member then Some n else None)
    t.session_order

let session_established t ~member ~neighbor =
  match find t ~member ~neighbor with Some s -> s.established | None -> false

let stats t = t.stats

let send_wire t (s : session) msg =
  let sent = t.send_relay ~member:s.member ~neighbor:s.neighbor msg in
  if sent then begin
    match msg with
    | Bgp.Message.Update _ -> t.stats.updates_out <- t.stats.updates_out + 1
    | Bgp.Message.Open _ | Bgp.Message.Keepalive | Bgp.Message.Notification _ -> ()
  end;
  sent

let add_session ?(mrai_config : Bgp.Config.t option) t ~member ~neighbor ~member_addr =
  let key = (member, neighbor) in
  if Hashtbl.mem t.sessions key then
    invalid_arg
      (Fmt.str "Speaker.add_session: duplicate %a/%a" Net.Asn.pp member Net.Asn.pp neighbor);
  let self = ref None in
  let mrai =
    Option.map
      (fun config ->
        Bgp.Mrai.create t.sim ~rng:(Engine.Rng.split t.rng) ~config
          ~name:(Fmt.str "speaker-mrai-%a-%a" Net.Asn.pp member Net.Asn.pp neighbor)
          ~send:(fun update ->
            match !self with
            | Some s when s.established ->
              ignore (send_wire t s (Bgp.Message.Update update))
            | Some _ | None -> ()))
      mrai_config
  in
  let s =
    { member; neighbor; member_addr; established = false; open_sent = false; peer_hold = 0;
      adj_out = Pt.create (); mrai; pending = Pm.empty; dirty = false; keepalive = None;
      hold = None }
  in
  self := Some s;
  Option.iter
    (fun m ->
      Bgp.Mrai.set_on_dirty m (fun () ->
          if t.batch_depth > 0 then begin
            s.dirty <- true;
            t.any_dirty <- true
          end
          else Bgp.Mrai.flush_event m))
    mrai;
  Hashtbl.replace t.sessions key s;
  t.session_order <- t.session_order @ [ key ]

(* End-of-scope flush, in deterministic [session_order]. *)
let flush_session t (s : session) =
  s.dirty <- false;
  (match s.mrai with Some m -> Bgp.Mrai.flush_event m | None -> ());
  if not (Pm.is_empty s.pending) then begin
    let announced, withdrawn =
      Pm.fold
        (fun prefix p (ann, wd) ->
          match p with
          | Pend_announce attrs -> ((prefix, attrs) :: ann, wd)
          | Pend_withdraw -> (ann, prefix :: wd))
        s.pending ([], [])
    in
    s.pending <- Pm.empty;
    if s.established then
      ignore
        (send_wire t s
           (Bgp.Message.update ~announced:(List.rev announced)
              ~withdrawn:(List.rev withdrawn) ()))
  end

let flush_batch t =
  if t.any_dirty then begin
    t.any_dirty <- false;
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.sessions key with
        | Some s when s.dirty -> flush_session t s
        | Some _ | None -> ())
      t.session_order
  end

let with_batch t f =
  t.batch_depth <- t.batch_depth + 1;
  Fun.protect
    ~finally:(fun () ->
      t.batch_depth <- t.batch_depth - 1;
      if t.batch_depth = 0 then flush_batch t)
    f

(* The hold time (whole seconds) the speaker proposes; 0 (liveness off)
   opts sessions out of keepalive supervision entirely. *)
let our_hold_secs t =
  match t.liveness with
  | None -> 0
  | Some { Bgp.Config.hold_time; _ } -> max 1 (int_of_float (Engine.Time.to_sec_f hold_time))

let negotiated_hold t (s : session) =
  let ours = our_hold_secs t in
  if ours = 0 || s.peer_hold = 0 then None else Some (Engine.Time.sec (min ours s.peer_hold))

let send_open t (s : session) =
  t.stats.opens <- t.stats.opens + 1;
  ignore
    (send_wire t s
       (Bgp.Message.Open
          { asn = s.member; router_id = s.member_addr; hold_time = our_hold_secs t }))

let open_session t ~member ~neighbor =
  match find t ~member ~neighbor with
  | None ->
    invalid_arg
      (Fmt.str "Speaker.open_session: unknown %a/%a" Net.Asn.pp member Net.Asn.pp neighbor)
  | Some s ->
    if not s.open_sent then begin
      s.open_sent <- true;
      send_open t s
    end

let open_all t =
  List.iter (fun (member, neighbor) -> open_session t ~member ~neighbor) t.session_order

let stop_liveness (s : session) =
  Option.iter Engine.Timer.cancel s.keepalive;
  Option.iter Engine.Timer.cancel s.hold

let session_down t ~member ~neighbor =
  match find t ~member ~neighbor with
  | None -> ()
  | Some s ->
    if s.established || s.open_sent then begin
      s.established <- false;
      s.open_sent <- false;
      Pt.clear s.adj_out;
      s.pending <- Pm.empty;
      s.dirty <- false;
      Option.iter Bgp.Mrai.reset s.mrai;
      stop_liveness s;
      log t "session %a/%a down" Net.Asn.pp member Net.Asn.pp neighbor;
      t.on_session ~member ~neighbor ~up:false
    end

(* Per-session KEEPALIVE emission + hold supervision, mirroring
   Router.start_liveness (negotiated hold, jittered emission). *)
let start_liveness t (s : session) =
  match (t.liveness, negotiated_hold t s) with
  | None, _ | _, None -> ()
  | Some { Bgp.Config.interval; _ }, Some hold_time ->
    let interval =
      Engine.Time.min interval (Engine.Time.span_scale hold_time (1.0 /. 3.0))
    in
    let jittered () = Engine.Rng.jitter_span t.rng interval ~lo:0.75 ~hi:1.0 in
    let keepalive =
      match s.keepalive with
      | Some timer -> timer
      | None ->
        let timer_ref = ref None in
        let emit () =
          if s.established then begin
            ignore (send_wire t s Bgp.Message.Keepalive);
            Option.iter (fun timer -> Engine.Timer.start timer (jittered ())) !timer_ref
          end
        in
        let timer =
          Engine.Timer.create ~category:"speaker.liveness" t.sim
            ~name:(Fmt.str "speaker-keepalive-%a-%a" Net.Asn.pp s.member Net.Asn.pp s.neighbor)
            ~callback:emit
        in
        timer_ref := Some timer;
        s.keepalive <- Some timer;
        Engine.Node.own_timer t.node timer;
        timer
    in
    let hold =
      match s.hold with
      | Some timer -> timer
      | None ->
        let timer =
          Engine.Timer.create ~category:"speaker.liveness" t.sim
            ~name:(Fmt.str "speaker-hold-%a-%a" Net.Asn.pp s.member Net.Asn.pp s.neighbor)
            ~callback:(fun () ->
              Engine.Sim.logf t.sim ~node:"speaker" ~category:"speaker"
                ~level:Engine.Trace.Warn "hold timer expired on %a/%a" Net.Asn.pp s.member
                Net.Asn.pp s.neighbor;
              Engine.Metrics.Counter.inc t.hold_expirations;
              ignore (send_wire t s (Bgp.Message.Notification "hold timer expired"));
              session_down t ~member:s.member ~neighbor:s.neighbor)
        in
        s.hold <- Some timer;
        Engine.Node.own_timer t.node timer;
        timer
    in
    Engine.Timer.start keepalive (jittered ());
    Engine.Timer.start hold hold_time

let establish t (s : session) =
  if not s.established then begin
    s.established <- true;
    log t "session %a/%a established" Net.Asn.pp s.member Net.Asn.pp s.neighbor;
    start_liveness t s;
    t.on_session ~member:s.member ~neighbor:s.neighbor ~up:true
  end

let touch_hold t (s : session) =
  match (negotiated_hold t s, s.hold) with
  | Some hold_time, Some hold when s.established -> Engine.Timer.start hold hold_time
  | _, _ -> ()

(* A BGP message relayed in from a border switch. *)
let handle_relay t ~member ~neighbor (msg : Bgp.Message.t) =
  match find t ~member ~neighbor with
  | None -> log t "relay for unknown session %a/%a" Net.Asn.pp member Net.Asn.pp neighbor
  | Some s -> (
    touch_hold t s;
    match msg with
    | Bgp.Message.Open { hold_time; _ } ->
      s.peer_hold <- hold_time;
      if not s.open_sent then begin
        s.open_sent <- true;
        send_open t s
      end;
      establish t s
    | Bgp.Message.Keepalive -> ()
    | Bgp.Message.Notification reason ->
      log t "notification on %a/%a: %s" Net.Asn.pp member Net.Asn.pp neighbor reason;
      session_down t ~member ~neighbor
    | Bgp.Message.Update u ->
      if s.established then begin
        t.stats.updates_in <- t.stats.updates_in + 1;
        if Engine.Causal.enabled (Engine.Sim.causal t.sim) then
          Engine.Sim.annotate t.sim ~category:"speaker.relay" ~node:"speaker"
            ~label:(Net.Asn.to_string neighbor) ();
        t.on_update ~member ~neighbor u
      end)

(* Controller-driven advertisement with Adj-RIB-Out deduplication. *)
let announce t ~member ~neighbor prefix attrs =
  match find t ~member ~neighbor with
  | None -> ()
  | Some s when not s.established -> ()
  | Some s -> (
    match Pt.find prefix s.adj_out with
    | Some prev when Bgp.Attrs.wire_equal prev attrs -> ()
    | Some _ | None -> (
      Pt.set prefix attrs s.adj_out;
      match s.mrai with
      | Some m -> Bgp.Mrai.enqueue_announce m prefix attrs
      | None when t.batch_depth > 0 ->
        s.pending <- Pm.add prefix (Pend_announce attrs) s.pending;
        s.dirty <- true;
        t.any_dirty <- true
      | None ->
        ignore
          (send_wire t s (Bgp.Message.update ~announced:[ (prefix, attrs) ] ()))))

let withdraw t ~member ~neighbor prefix =
  match find t ~member ~neighbor with
  | None -> ()
  | Some s when not s.established -> ()
  | Some s ->
    if Pt.mem prefix s.adj_out then begin
      Pt.remove prefix s.adj_out;
      match s.mrai with
      | Some m -> Bgp.Mrai.enqueue_withdraw m prefix
      | None when t.batch_depth > 0 ->
        s.pending <- Pm.add prefix Pend_withdraw s.pending;
        s.dirty <- true;
        t.any_dirty <- true
      | None -> ignore (send_wire t s (Bgp.Message.update ~withdrawn:[ prefix ] ()))
    end

let advertised t ~member ~neighbor prefix =
  Option.bind (find t ~member ~neighbor) (fun s -> Pt.find prefix s.adj_out)

(* --- Lifecycle and checkpointing --------------------------------------- *)

type session_ck = {
  sk_member : Net.Asn.t;
  sk_neighbor : Net.Asn.t;
  sk_established : bool;
  sk_open_sent : bool;
  sk_peer_hold : int;
  sk_adj_out : (Net.Ipv4.prefix * Bgp.Attrs.t) list;
  sk_mrai : Bgp.Mrai.state option;
}

type Engine.Node.blob += Speaker_state of Engine.Rng.t * session_ck list

let snapshot t =
  let sessions =
    List.filter_map
      (fun key ->
        Option.map
          (fun s ->
            {
              sk_member = s.member;
              sk_neighbor = s.neighbor;
              sk_established = s.established;
              sk_open_sent = s.open_sent;
              sk_peer_hold = s.peer_hold;
              sk_adj_out = Pt.entries s.adj_out;
              sk_mrai = Option.map Bgp.Mrai.state s.mrai;
            })
          (Hashtbl.find_opt t.sessions key))
      t.session_order
  in
  Speaker_state (Engine.Rng.copy t.rng, sessions)

let restore t = function
  | Speaker_state (rng, sessions) ->
    Engine.Rng.assign ~from:rng t.rng;
    List.iter
      (fun sk ->
        match find t ~member:sk.sk_member ~neighbor:sk.sk_neighbor with
        | None -> ()
        | Some s ->
          s.established <- sk.sk_established;
          s.open_sent <- sk.sk_open_sent;
          s.peer_hold <- sk.sk_peer_hold;
          Pt.clear s.adj_out;
          List.iter (fun (p, a) -> Pt.set p a s.adj_out) sk.sk_adj_out;
          (match (s.mrai, sk.sk_mrai) with
          | Some m, Some st -> Bgp.Mrai.restore m st
          | _ -> ());
          if s.established then start_liveness t s)
      sessions
  | _ -> invalid_arg "Speaker.restore: foreign snapshot blob"

(* A crashed speaker silently loses every session (the ExaBGP process
   died); peers only find out when the restart's NOTIFICATION reaches
   them.  The controller is not notified here — when the speaker crashes
   alone the framework decides, and when the whole cluster head crashes
   the controller loses its RIB anyway. *)
let on_crashed t =
  Hashtbl.iter
    (fun _ s ->
      s.established <- false;
      s.open_sent <- false;
      s.peer_hold <- 0;
      Pt.clear s.adj_out;
      s.pending <- Pm.empty;
      s.dirty <- false;
      Option.iter Bgp.Mrai.reset s.mrai)
    t.sessions

(* Restart: NOTIFICATION-then-OPEN on every configured session, so the
   remote router tears the old session down (flushing our stale routes)
   and answers the OPEN like a cold start. *)
let on_restarted t =
  List.iter
    (fun (member, neighbor) ->
      match find t ~member ~neighbor with
      | None -> ()
      | Some s ->
        ignore (send_wire t s (Bgp.Message.Notification "speaker restarted"));
        open_session t ~member ~neighbor)
    t.session_order

let create ?liveness ~sim ~send_relay () =
  let t = create_unhooked ?liveness ~sim ~send_relay () in
  Engine.Node.on_crash t.node (fun () -> on_crashed t);
  Engine.Node.on_start t.node (fun ~first -> if not first then on_restarted t);
  Engine.Node.set_snapshot t.node (fun () -> snapshot t);
  Engine.Node.set_restore t.node (restore t);
  Engine.Node.start t.node;
  t
