(* Net.Netsim: delivery, delays, link failure semantics, watchers. *)

open Engine
open Net

let setup () =
  let sim = Sim.create () in
  let net : string Netsim.t = Netsim.create sim in
  (sim, net)

let test_delivery_with_delay () =
  let sim, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  ignore (Netsim.add_link ~delay:(Time.ms 7) net 1 2);
  let got = ref [] in
  Netsim.set_handler net 2 (fun ~from msg -> got := (from, msg, Sim.now sim) :: !got);
  Alcotest.(check bool) "send accepted" true (Netsim.send net ~src:1 ~dst:2 "hello");
  ignore (Sim.run sim);
  match !got with
  | [ (from, msg, at) ] ->
    Alcotest.(check int) "sender" 1 from;
    Alcotest.(check string) "payload" "hello" msg;
    Alcotest.(check int) "delay applied" 7_000 (Time.to_us at)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

let test_no_link_no_send () =
  let _, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  Alcotest.(check bool) "send refused" false (Netsim.send net ~src:1 ~dst:2 "x")

let test_down_link_refuses () =
  let _, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  let link = Netsim.add_link net 1 2 in
  Netsim.set_link_up net link false;
  Alcotest.(check bool) "send refused on down link" false (Netsim.send net ~src:1 ~dst:2 "x")

let test_inflight_dropped_on_failure () =
  let sim, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  let link = Netsim.add_link ~delay:(Time.ms 10) net 1 2 in
  let got = ref 0 in
  Netsim.set_handler net 2 (fun ~from:_ _ -> incr got);
  ignore (Netsim.send net ~src:1 ~dst:2 "doomed");
  (* Fail the link while the message is in flight. *)
  ignore (Sim.schedule_at sim (Time.ms 5) (fun () -> Netsim.set_link_up net link false));
  ignore (Sim.run sim);
  Alcotest.(check int) "message dropped" 0 !got;
  Alcotest.(check int) "drop counted" 1 (Link.dropped link)

let test_watchers_notified () =
  let _, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  let link = Netsim.add_link net 1 2 in
  let events = ref [] in
  Netsim.set_link_watcher net 1 (fun ~link:_ ~peer ~up -> events := (1, peer, up) :: !events);
  Netsim.set_link_watcher net 2 (fun ~link:_ ~peer ~up -> events := (2, peer, up) :: !events);
  Netsim.set_link_up net link false;
  Netsim.set_link_up net link false (* idempotent: no duplicate events *);
  Netsim.set_link_up net link true;
  let expected = [ (1, 2, false); (2, 1, false); (1, 2, true); (2, 1, true) ] in
  Alcotest.(check (list (triple int int bool))) "watcher events" expected (List.rev !events)

let test_lossy_link () =
  let sim, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  let link = Netsim.add_link ~loss:1.0 net 1 2 in
  let got = ref 0 in
  Netsim.set_handler net 2 (fun ~from:_ _ -> incr got);
  ignore (Netsim.send net ~src:1 ~dst:2 "lost");
  ignore (Sim.run sim);
  Alcotest.(check int) "total loss drops all" 0 !got;
  Alcotest.(check int) "counted" 1 (Link.dropped link)

let test_duplicate_guards () =
  let _, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  (match Netsim.add_node net ~id:1 ~name:"again" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate node must raise");
  Netsim.add_node net ~id:2 ~name:"b";
  ignore (Netsim.add_link net 1 2);
  match Netsim.add_link net 2 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate link must raise"

let test_up_graph () =
  let _, net = setup () in
  List.iter (fun i -> Netsim.add_node net ~id:i ~name:(string_of_int i)) [ 1; 2; 3 ];
  let l12 = Netsim.add_link net 1 2 in
  ignore (Netsim.add_link net 2 3);
  Netsim.set_link_up net l12 false;
  let g = Netsim.up_graph net in
  Alcotest.(check bool) "down link absent" false (Graph.mem_edge g 1 2);
  Alcotest.(check bool) "up link present" true (Graph.mem_edge g 2 3);
  Alcotest.(check (list int)) "all nodes present" [ 1; 2; 3 ] (Graph.nodes g)

let prop_link_fifo =
  QCheck.Test.make ~name:"per-link delivery preserves send order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) small_int)
    (fun payloads ->
      let sim = Sim.create () in
      let net : int Netsim.t = Netsim.create sim in
      Netsim.add_node net ~id:1 ~name:"a";
      Netsim.add_node net ~id:2 ~name:"b";
      ignore (Netsim.add_link ~delay:(Time.ms 3) net 1 2);
      let got = ref [] in
      Netsim.set_handler net 2 (fun ~from:_ msg -> got := msg :: !got);
      List.iter (fun payload -> ignore (Netsim.send net ~src:1 ~dst:2 payload)) payloads;
      ignore (Sim.run sim);
      List.rev !got = payloads)

(* Bandwidth-limited links: serialization delay, FIFO queuing, drop-tail. *)

let setup_bw ?(queue_limit = 64) bandwidth_bps =
  let sim = Sim.create () in
  let net : int Netsim.t = Netsim.create sim in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  let link = Netsim.add_link ~delay:(Time.ms 10) ~bandwidth_bps ~queue_limit net 1 2 in
  let got = ref [] in
  Netsim.set_handler net 2 (fun ~from:_ msg -> got := (msg, Sim.now sim) :: !got);
  (sim, net, link, got)

let test_serialization_delay () =
  (* 8000 bits at 1 Mbit/s = 8 ms of serialization + 10 ms propagation *)
  let sim, net, _, got = setup_bw 1_000_000 in
  ignore (Netsim.send ~size_bits:8000 net ~src:1 ~dst:2 0);
  ignore (Sim.run sim);
  match !got with
  | [ (_, at) ] -> Alcotest.(check int) "tx + prop" 18_000 (Time.to_us at)
  | _ -> Alcotest.fail "expected one delivery"

let test_queueing_serializes_bursts () =
  (* three back-to-back messages serialize one after another *)
  let sim, net, _, got = setup_bw 1_000_000 in
  for i = 1 to 3 do
    ignore (Netsim.send ~size_bits:8000 net ~src:1 ~dst:2 i)
  done;
  ignore (Sim.run sim);
  let times = List.rev_map (fun (_, at) -> Time.to_us at) !got in
  Alcotest.(check (list int)) "spaced by transmission time" [ 18_000; 26_000; 34_000 ] times

let test_drop_tail () =
  let sim, net, link, got = setup_bw ~queue_limit:2 1_000_000 in
  for i = 1 to 6 do
    ignore (Netsim.send ~size_bits:8000 net ~src:1 ~dst:2 i)
  done;
  ignore (Sim.run sim);
  Alcotest.(check bool) "some dropped" true (Link.dropped link > 0);
  Alcotest.(check bool) "some delivered" true (List.length !got >= 2);
  Alcotest.(check bool) "not all delivered" true (List.length !got < 6)

let test_directions_independent () =
  let sim = Sim.create () in
  let net : int Netsim.t = Netsim.create sim in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  ignore (Netsim.add_link ~delay:(Time.ms 10) ~bandwidth_bps:1_000_000 net 1 2);
  let at_1 = ref None and at_2 = ref None in
  Netsim.set_handler net 1 (fun ~from:_ _ -> at_1 := Some (Sim.now sim));
  Netsim.set_handler net 2 (fun ~from:_ _ -> at_2 := Some (Sim.now sim));
  ignore (Netsim.send ~size_bits:8000 net ~src:1 ~dst:2 0);
  ignore (Netsim.send ~size_bits:8000 net ~src:2 ~dst:1 0);
  ignore (Sim.run sim);
  (* full duplex: both arrive after one transmission each, no coupling *)
  Alcotest.(check (option int)) "a->b" (Some 18_000) (Option.map Time.to_us !at_2);
  Alcotest.(check (option int)) "b->a" (Some 18_000) (Option.map Time.to_us !at_1)

(* --- Drop-reason accounting (net_messages_dropped_total{reason=...}) ---- *)

let test_drop_reason_link_down () =
  let sim, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  let link = Netsim.add_link ~delay:(Time.ms 10) net 1 2 in
  Netsim.set_handler net 2 (fun ~from:_ _ -> ());
  ignore (Netsim.send net ~src:1 ~dst:2 "doomed");
  ignore (Sim.schedule_at sim (Time.ms 5) (fun () -> Netsim.set_link_up net link false));
  ignore (Sim.run sim);
  Alcotest.(check int) "link_down counted" 1 (Netsim.drops net Netsim.Link_down);
  Alcotest.(check int) "no other reasons" 0 (Netsim.drops net Netsim.Loss)

let test_drop_reason_loss () =
  let sim, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  ignore (Netsim.add_link ~loss:1.0 net 1 2);
  Netsim.set_handler net 2 (fun ~from:_ _ -> ());
  ignore (Netsim.send net ~src:1 ~dst:2 "lost");
  ignore (Sim.run sim);
  Alcotest.(check int) "loss counted" 1 (Netsim.drops net Netsim.Loss)

let test_drop_reason_queue () =
  let sim = Sim.create () in
  let net : int Netsim.t = Netsim.create sim in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  ignore
    (Netsim.add_link ~delay:(Time.ms 1) ~bandwidth_bps:1_000_000 ~queue_limit:2 net 1 2);
  Netsim.set_handler net 2 (fun ~from:_ _ -> ());
  for i = 1 to 6 do
    ignore (Netsim.send ~size_bits:8000 net ~src:1 ~dst:2 i)
  done;
  ignore (Sim.run sim);
  Alcotest.(check bool) "drop-tail counted as queue" true (Netsim.drops net Netsim.Queue > 0)

let test_drop_reason_no_handler () =
  let sim, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  ignore (Netsim.add_link net 1 2);
  ignore (Netsim.send net ~src:1 ~dst:2 "void");
  ignore (Sim.run sim);
  Alcotest.(check int) "no_handler counted" 1 (Netsim.drops net Netsim.No_handler)

let test_drop_reason_node_down () =
  let sim, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  ignore (Netsim.add_link ~delay:(Time.ms 10) net 1 2);
  let got = ref 0 in
  let receiver = Node.create ~kind:"test" sim ~name:"b" in
  Node.start receiver;
  Netsim.attach net 2 (Node.port receiver ~handler:(fun ~from:_ _ -> incr got));
  Alcotest.(check bool) "attached node visible" true (Netsim.attached_node net 2 <> None);
  ignore (Netsim.send net ~src:1 ~dst:2 "too late");
  ignore (Sim.schedule_at sim (Time.ms 5) (fun () -> Node.crash receiver));
  ignore (Sim.run sim);
  Alcotest.(check int) "not processed" 0 !got;
  Alcotest.(check int) "node_down counted" 1 (Netsim.drops net Netsim.Node_down)

let test_drop_reason_metric_labels () =
  let sim, net = setup () in
  Netsim.add_node net ~id:1 ~name:"a";
  Netsim.add_node net ~id:2 ~name:"b";
  ignore (Netsim.add_link net 1 2);
  ignore (Netsim.send net ~src:1 ~dst:2 "void");
  ignore (Sim.run sim);
  let snap = Metrics.snapshot (Sim.metrics sim) ~at:(Sim.now sim) in
  Alcotest.(check (option (float 0.))) "labeled series exported" (Some 1.0)
    (Metrics.value snap ~labels:[ ("reason", "no_handler") ] "net_messages_dropped_total");
  (* the unlabeled aggregate keeps counting every reason *)
  Alcotest.(check (option (float 0.))) "aggregate series" (Some 1.0)
    (Metrics.value snap "net_messages_dropped_total")

let suite =
  [
    Alcotest.test_case "delivery with delay" `Quick test_delivery_with_delay;
    Alcotest.test_case "serialization delay" `Quick test_serialization_delay;
    Alcotest.test_case "queueing serializes bursts" `Quick test_queueing_serializes_bursts;
    Alcotest.test_case "drop tail" `Quick test_drop_tail;
    Alcotest.test_case "directions independent" `Quick test_directions_independent;
    QCheck_alcotest.to_alcotest prop_link_fifo;
    Alcotest.test_case "no link refuses send" `Quick test_no_link_no_send;
    Alcotest.test_case "down link refuses send" `Quick test_down_link_refuses;
    Alcotest.test_case "in-flight drop on failure" `Quick test_inflight_dropped_on_failure;
    Alcotest.test_case "watchers notified once" `Quick test_watchers_notified;
    Alcotest.test_case "lossy link" `Quick test_lossy_link;
    Alcotest.test_case "duplicate guards" `Quick test_duplicate_guards;
    Alcotest.test_case "up graph" `Quick test_up_graph;
    Alcotest.test_case "drop reason: link down" `Quick test_drop_reason_link_down;
    Alcotest.test_case "drop reason: loss" `Quick test_drop_reason_loss;
    Alcotest.test_case "drop reason: queue" `Quick test_drop_reason_queue;
    Alcotest.test_case "drop reason: no handler" `Quick test_drop_reason_no_handler;
    Alcotest.test_case "drop reason: node down" `Quick test_drop_reason_node_down;
    Alcotest.test_case "drop reason: metric labels" `Quick test_drop_reason_metric_labels;
  ]
