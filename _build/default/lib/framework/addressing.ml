(* Automatic IP address assignment — the configuration management the
   framework performs so experimenters never hand out prefixes.

   Each AS (by its ordinal in the spec) receives:
   - a router address   10.<k/256>.<k%256>.1 (also the BGP next-hop);
   - a host address     inside its origin prefix (.10);
   - an origin prefix   100.<64 + k/256>.<k%256>.0/24, the prefix the AS
     announces in experiments by default. *)

type plan = {
  index_of : Net.Asn.t -> int;
  router_addr : Net.Asn.t -> Net.Ipv4.addr;
  host_addr : Net.Asn.t -> Net.Ipv4.addr;
  origin_prefix : Net.Asn.t -> Net.Ipv4.prefix;
}

let plan spec =
  let table = Hashtbl.create 64 in
  List.iteri
    (fun i (n : Topology.Spec.node_spec) -> Hashtbl.replace table n.Topology.Spec.asn i)
    (Topology.Spec.nodes spec);
  let index_of asn =
    match Hashtbl.find_opt table asn with
    | Some i -> i
    | None -> invalid_arg (Fmt.str "Addressing: unknown %a" Net.Asn.pp asn)
  in
  let split asn =
    let k = index_of asn in
    if k >= 256 * 64 then failwith "Addressing: topology too large for the address plan";
    (k / 256, k mod 256)
  in
  let router_addr asn =
    let hi, lo = split asn in
    Net.Ipv4.addr_of_octets 10 hi lo 1
  in
  let origin_prefix asn =
    let hi, lo = split asn in
    Net.Ipv4.prefix (Net.Ipv4.addr_of_octets 100 (64 + hi) lo 0) 24
  in
  let host_addr asn = Net.Ipv4.nth_host (origin_prefix asn) 10 in
  { index_of; router_addr; host_addr; origin_prefix }
