(* OpenFlow-style flow rules.

   The emulation has no port numbers: a "port" is the node id of the
   neighbor reached over the corresponding link, which is what forwarding
   needs. *)

type port = int

type action =
  | Output of port
  | To_controller
  | Drop

type rule = {
  match_prefix : Net.Ipv4.prefix;
  priority : int;
  action : action;
  mutable packets : int; (* match counter *)
  idle_timeout : Engine.Time.span option; (* expire after this much disuse *)
  hard_timeout : Engine.Time.span option; (* expire this long after install *)
  mutable last_used : Engine.Time.t; (* maintained by the switch *)
}

let make ?(priority = 0) ?idle_timeout ?hard_timeout ~match_prefix action =
  {
    match_prefix;
    priority;
    action;
    packets = 0;
    idle_timeout;
    hard_timeout;
    last_used = Engine.Time.zero;
  }

let matches rule addr = Net.Ipv4.mem addr rule.match_prefix

let action_equal a b =
  match (a, b) with
  | Output p, Output q -> p = q
  | To_controller, To_controller -> true
  | Drop, Drop -> true
  | (Output _ | To_controller | Drop), _ -> false

(* Same match and priority: the key OpenFlow uses for add-or-replace. *)
let same_match a b =
  Net.Ipv4.equal_prefix a.match_prefix b.match_prefix && a.priority = b.priority

let pp_action ppf = function
  | Output p -> Fmt.pf ppf "output:%d" p
  | To_controller -> Fmt.string ppf "controller"
  | Drop -> Fmt.string ppf "drop"

let pp ppf r =
  Fmt.pf ppf "prio=%d %a -> %a (%d pkts)" r.priority Net.Ipv4.pp_prefix r.match_prefix
    pp_action r.action r.packets
