(* Sdn.Switch: forwarding, PACKET_IN on miss, BGP relaying, port status —
   exercised through its closures, no fabric needed. *)

open Sdn

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let a s = Option.get (Net.Ipv4.addr_of_string s)

let member = Net.Asn.of_int 65010

type env = {
  switch : Switch.t;
  control : Openflow.t list ref;
  data : (int * Net.Packet.t) list ref;
  bgp : (int * Bgp.Message.t) list ref;
  local : Net.Packet.t list ref;
}

let setup ?(local_prefix = "100.64.10.0/24") () =
  let sim = Engine.Sim.create () in
  let control = ref [] and data = ref [] and bgp = ref [] and local = ref [] in
  let switch =
    Switch.create ~sim ~asn:member ~node_id:65010
      ~send_control:(fun m ->
        control := m :: !control;
        true)
      ~send_data:(fun ~dst pkt ->
        data := (dst, pkt) :: !data;
        true)
      ~send_bgp:(fun ~dst m ->
        bgp := (dst, m) :: !bgp;
        true)
      ~asn_of_node:(fun node -> if node >= 65001 then Some (Net.Asn.of_int node) else None)
      ~node_of_asn:(fun asn -> Some (Net.Asn.to_int asn))
      ~is_local:(fun addr -> Net.Ipv4.mem addr (p local_prefix))
      ~deliver_local:(fun pkt -> local := pkt :: !local)
      ()
  in
  (switch, { switch; control; data; bgp; local })

let echo dst = Net.Packet.echo ~src:(a "100.64.1.10") ~dst:(a dst) 0

let test_miss_goes_to_controller () =
  let sw, env = setup () in
  Switch.handle_data sw ~from:65001 (echo "100.64.5.10");
  (match !(env.control) with
  | [ Openflow.Packet_in { switch_asn; in_port; _ } ] ->
    Alcotest.(check int) "tagged with switch" 65010 (Net.Asn.to_int switch_asn);
    Alcotest.(check int) "in port" 65001 in_port
  | _ -> Alcotest.fail "expected PACKET_IN");
  Alcotest.(check int) "not forwarded" 0 (List.length !(env.data))

let test_flow_forwarding () =
  let sw, env = setup () in
  Switch.handle_control sw
    (Openflow.Flow_mod
       { command = Openflow.Add;
         rule = Flow.make ~priority:24 ~match_prefix:(p "100.64.5.0/24") (Flow.Output 65002) });
  Switch.handle_data sw ~from:65001 (echo "100.64.5.10");
  (match !(env.data) with
  | [ (65002, pkt) ] ->
    Alcotest.(check int) "ttl decremented" (Net.Packet.default_ttl - 1) pkt.Net.Packet.ttl
  | _ -> Alcotest.fail "expected forward to 65002");
  Alcotest.(check int) "forward counted" 1 (Switch.stats sw).Switch.forwarded

let test_local_delivery () =
  let sw, env = setup () in
  Switch.handle_data sw ~from:65001 (echo "100.64.10.99");
  Alcotest.(check int) "delivered locally" 1 (List.length !(env.local));
  Alcotest.(check int) "nothing forwarded" 0 (List.length !(env.data))

let test_ttl_exhaustion () =
  let sw, env = setup () in
  Switch.handle_control sw
    (Openflow.Flow_mod
       { command = Openflow.Add;
         rule = Flow.make ~match_prefix:(p "0.0.0.0/0") (Flow.Output 65002) });
  let dead = { (echo "100.64.5.10") with Net.Packet.ttl = 0 } in
  Switch.handle_data sw ~from:65001 dead;
  Alcotest.(check int) "dropped" 1 (Switch.stats sw).Switch.dropped;
  Alcotest.(check int) "not forwarded" 0 (List.length !(env.data))

let test_drop_rule () =
  let sw, _env = setup () in
  Switch.handle_control sw
    (Openflow.Flow_mod
       { command = Openflow.Add;
         rule = Flow.make ~match_prefix:(p "100.64.5.0/24") Flow.Drop });
  Switch.handle_data sw ~from:65001 (echo "100.64.5.10");
  Alcotest.(check int) "dropped by rule" 1 (Switch.stats sw).Switch.dropped

let test_flow_delete () =
  let sw, env = setup () in
  let rule = Flow.make ~priority:24 ~match_prefix:(p "100.64.5.0/24") (Flow.Output 65002) in
  Switch.handle_control sw (Openflow.Flow_mod { command = Openflow.Add; rule });
  Switch.handle_control sw (Openflow.Flow_mod { command = Openflow.Delete; rule });
  Switch.handle_data sw ~from:65001 (echo "100.64.5.10");
  Alcotest.(check int) "back to PACKET_IN" 1 (List.length !(env.control));
  Alcotest.(check int) "table empty" 0 (Flow_table.size (Switch.table sw))

let test_bgp_relay_inbound () =
  let sw, env = setup () in
  let msg = Bgp.Message.Keepalive in
  Switch.handle_bgp sw ~from:65001 msg;
  match !(env.control) with
  | [ Openflow.Bgp_relay { member = m; neighbor; direction = Openflow.To_speaker; _ } ] ->
    Alcotest.(check int) "member" 65010 (Net.Asn.to_int m);
    Alcotest.(check int) "neighbor" 65001 (Net.Asn.to_int neighbor)
  | _ -> Alcotest.fail "expected BGP_RELAY to speaker"

let test_bgp_relay_outbound () =
  let sw, env = setup () in
  Switch.handle_control sw
    (Openflow.Bgp_relay
       { member; neighbor = Net.Asn.of_int 65001; direction = Openflow.To_neighbor;
         payload = Bgp.Message.Keepalive });
  match !(env.bgp) with
  | [ (65001, Bgp.Message.Keepalive) ] -> ()
  | _ -> Alcotest.fail "expected BGP toward the neighbor"

let test_packet_out () =
  let sw, env = setup () in
  Switch.handle_control sw (Openflow.Packet_out { out_port = 65002; packet = echo "1.2.3.4" });
  Alcotest.(check int) "emitted" 1 (List.length !(env.data));
  (* out_port = own node id means deliver locally *)
  Switch.handle_control sw (Openflow.Packet_out { out_port = 65010; packet = echo "1.2.3.4" });
  Alcotest.(check int) "self port delivers locally" 1 (List.length !(env.local))

(* Timeouts need the simulated clock to advance. *)
let setup_timed () =
  let sim = Engine.Sim.create () in
  let control = ref [] and data = ref [] and bgp = ref [] and local = ref [] in
  let switch =
    Switch.create ~sim ~asn:member ~node_id:65010
      ~send_control:(fun m ->
        control := m :: !control;
        true)
      ~send_data:(fun ~dst pkt ->
        data := (dst, pkt) :: !data;
        true)
      ~send_bgp:(fun ~dst m ->
        bgp := (dst, m) :: !bgp;
        true)
      ~asn_of_node:(fun node -> if node >= 65001 then Some (Net.Asn.of_int node) else None)
      ~node_of_asn:(fun asn -> Some (Net.Asn.to_int asn))
      ~is_local:(fun _ -> false)
      ~deliver_local:(fun pkt -> local := pkt :: !local)
      ()
  in
  (sim, switch, control)

let removed_count control =
  List.length
    (List.filter (function Openflow.Flow_removed _ -> true | _ -> false) !control)

let test_hard_timeout () =
  let sim, sw, control = setup_timed () in
  Switch.handle_control sw
    (Openflow.Flow_mod
       { command = Openflow.Add;
         rule =
           Flow.make ~hard_timeout:(Engine.Time.sec 5) ~match_prefix:(p "100.64.5.0/24")
             (Flow.Output 65002) });
  ignore (Engine.Sim.run ~until:(Engine.Time.sec 4) sim);
  Alcotest.(check int) "still installed before expiry" 1 (Flow_table.size (Switch.table sw));
  ignore (Engine.Sim.run sim);
  Alcotest.(check int) "removed at hard timeout" 0 (Flow_table.size (Switch.table sw));
  Alcotest.(check int) "controller notified" 1 (removed_count control)

let test_idle_timeout_respects_use () =
  let sim, sw, control = setup_timed () in
  Switch.handle_control sw
    (Openflow.Flow_mod
       { command = Openflow.Add;
         rule =
           Flow.make ~idle_timeout:(Engine.Time.sec 5) ~match_prefix:(p "100.64.5.0/24")
             (Flow.Output 65002) });
  (* traffic at t=3 postpones the idle expiry to t=8 *)
  ignore
    (Engine.Sim.schedule_at sim (Engine.Time.sec 3) (fun () ->
         Switch.handle_data sw ~from:65001 (echo "100.64.5.10")));
  ignore (Engine.Sim.run ~until:(Engine.Time.sec 7) sim);
  Alcotest.(check int) "alive while used" 1 (Flow_table.size (Switch.table sw));
  ignore (Engine.Sim.run sim);
  Alcotest.(check int) "expired once idle" 0 (Flow_table.size (Switch.table sw));
  Alcotest.(check bool) "reason is idle" true
    (List.exists
       (function
         | Openflow.Flow_removed { reason = Openflow.Idle_timeout; _ } -> true
         | _ -> false)
       !control)

let test_timeout_spares_replacement () =
  let sim, sw, _control = setup_timed () in
  let add ?hard_timeout port =
    Switch.handle_control sw
      (Openflow.Flow_mod
         { command = Openflow.Add;
           rule =
             Flow.make ?hard_timeout ~priority:24 ~match_prefix:(p "100.64.5.0/24")
               (Flow.Output port) })
  in
  add ~hard_timeout:(Engine.Time.sec 5) 65002;
  (* replace the rule (same key) before the old timer fires *)
  ignore (Engine.Sim.schedule_at sim (Engine.Time.sec 2) (fun () -> add 65003));
  ignore (Engine.Sim.run sim);
  (match Flow_table.rules (Switch.table sw) with
  | [ r ] ->
    Alcotest.(check bool) "replacement survives the old timer" true
      (Flow.action_equal r.Flow.action (Flow.Output 65003))
  | l -> Alcotest.failf "expected 1 rule, got %d" (List.length l))

let test_port_change_reports () =
  let sw, env = setup () in
  Switch.port_change sw ~peer:65001 ~up:false;
  match !(env.control) with
  | [ Openflow.Port_status { switch_asn; port; up } ] ->
    Alcotest.(check int) "switch" 65010 (Net.Asn.to_int switch_asn);
    Alcotest.(check int) "port" 65001 port;
    Alcotest.(check bool) "down" false up
  | _ -> Alcotest.fail "expected PORT_STATUS"

let suite =
  [
    Alcotest.test_case "miss to controller" `Quick test_miss_goes_to_controller;
    Alcotest.test_case "flow forwarding" `Quick test_flow_forwarding;
    Alcotest.test_case "local delivery" `Quick test_local_delivery;
    Alcotest.test_case "ttl exhaustion" `Quick test_ttl_exhaustion;
    Alcotest.test_case "drop rule" `Quick test_drop_rule;
    Alcotest.test_case "flow delete" `Quick test_flow_delete;
    Alcotest.test_case "bgp relay inbound" `Quick test_bgp_relay_inbound;
    Alcotest.test_case "bgp relay outbound" `Quick test_bgp_relay_outbound;
    Alcotest.test_case "packet out" `Quick test_packet_out;
    Alcotest.test_case "hard timeout" `Quick test_hard_timeout;
    Alcotest.test_case "idle timeout respects use" `Quick test_idle_timeout_respects_use;
    Alcotest.test_case "timeout spares replacement" `Quick test_timeout_spares_replacement;
    Alcotest.test_case "port change reports" `Quick test_port_change_reports;
  ]
