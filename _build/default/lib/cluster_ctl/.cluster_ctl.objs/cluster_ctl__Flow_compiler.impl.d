lib/cluster_ctl/flow_compiler.ml: As_graph List Net Option Sdn
