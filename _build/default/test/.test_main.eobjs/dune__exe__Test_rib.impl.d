test/test_rib.ml: Alcotest Bgp Engine List Net Option
