(* Bgp.Attrs and Bgp.Community. *)

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let asn = Net.Asn.of_int

let test_prepend () =
  let a = Bgp.Attrs.make ~next_hop:nh () in
  let a = Bgp.Attrs.prepend a (asn 65002) in
  let a = Bgp.Attrs.prepend a (asn 65001) in
  Alcotest.(check (list int)) "leftmost is latest" [ 65001; 65002 ]
    (List.map Net.Asn.to_int (Bgp.Attrs.as_path a));
  Alcotest.(check int) "length" 2 (Bgp.Attrs.path_length a);
  Alcotest.(check bool) "contains" true (Bgp.Attrs.path_contains a (asn 65002));
  Alcotest.(check bool) "not contains" false (Bgp.Attrs.path_contains a (asn 65009))

let test_path_endpoints () =
  let a = Bgp.Attrs.make ~as_path:[ asn 65001; asn 65002; asn 65003 ] ~next_hop:nh () in
  Alcotest.(check (option int)) "origin AS" (Some 65003)
    (Option.map Net.Asn.to_int (Bgp.Attrs.origin_as a));
  Alcotest.(check (option int)) "neighbor AS" (Some 65001)
    (Option.map Net.Asn.to_int (Bgp.Attrs.neighbor_as a));
  let empty = Bgp.Attrs.make ~next_hop:nh () in
  Alcotest.(check (option int)) "empty origin" None
    (Option.map Net.Asn.to_int (Bgp.Attrs.origin_as empty))

let test_wire_equal_ignores_local_pref () =
  let a = Bgp.Attrs.make ~as_path:[ asn 65001 ] ~local_pref:100 ~next_hop:nh () in
  let b = Bgp.Attrs.with_local_pref a 200 in
  Alcotest.(check bool) "local pref excluded" true (Bgp.Attrs.wire_equal a b);
  let c = Bgp.Attrs.with_med a 5 in
  Alcotest.(check bool) "med included" false (Bgp.Attrs.wire_equal a c);
  let d = Bgp.Attrs.prepend a (asn 65009) in
  Alcotest.(check bool) "path included" false (Bgp.Attrs.wire_equal a d)

let test_communities () =
  let c = Bgp.Community.make 65000 77 in
  let a = Bgp.Attrs.add_community (Bgp.Attrs.make ~next_hop:nh ()) c in
  Alcotest.(check bool) "has community" true (Bgp.Attrs.has_community a c);
  Alcotest.(check bool) "no other" false (Bgp.Attrs.has_community a Bgp.Community.no_export);
  Alcotest.(check string) "render" "65000:77" (Bgp.Community.to_string c);
  Alcotest.(check bool) "parse roundtrip" true
    (Bgp.Community.of_string "65000:77" = Some c);
  Alcotest.(check bool) "bad parse" true (Bgp.Community.of_string "9999999:1" = None)

let test_origin_rank () =
  Alcotest.(check bool) "igp < egp" true
    (Bgp.Attrs.origin_rank Bgp.Attrs.Igp < Bgp.Attrs.origin_rank Bgp.Attrs.Egp);
  Alcotest.(check bool) "egp < incomplete" true
    (Bgp.Attrs.origin_rank Bgp.Attrs.Egp < Bgp.Attrs.origin_rank Bgp.Attrs.Incomplete)

(* --- Interning properties -------------------------------------------- *)

let test_intern_physical_equality () =
  let a =
    Bgp.Attrs.make ~as_path:[ asn 65001; asn 65002 ] ~local_pref:120 ~med:7 ~next_hop:nh ()
  in
  let b =
    Bgp.Attrs.make ~as_path:[ asn 65001; asn 65002 ] ~local_pref:120 ~med:7 ~next_hop:nh ()
  in
  Alcotest.(check bool) "same content is the same value" true (a == b);
  (* different construction route, same content *)
  let c =
    Bgp.Attrs.prepend
      (Bgp.Attrs.with_med
         (Bgp.Attrs.with_local_pref (Bgp.Attrs.make ~as_path:[ asn 65002 ] ~next_hop:nh ()) 120)
         7)
      (asn 65001)
  in
  Alcotest.(check bool) "construction route irrelevant" true (a == c);
  Alcotest.(check int) "ids agree" (Bgp.Attrs.id a) (Bgp.Attrs.id c);
  Alcotest.(check int) "wire ids agree" (Bgp.Attrs.wire_id a) (Bgp.Attrs.wire_id c)

(* QCheck: any two logically-equal random attrs are physically equal, and
   the intern tables grow by at most the number of distinct inputs. *)
let attrs_spec_gen =
  QCheck.Gen.(
    let path = list_size (int_range 0 4) (int_range 65001 65006) in
    let lp = int_range 50 150 in
    let med = int_range 0 3 in
    triple path lp med)

let build (path, lp, med) =
  Bgp.Attrs.make ~as_path:(List.map asn path) ~local_pref:lp ~med ~next_hop:nh ()

let prop_same_spec_physically_equal =
  QCheck.Test.make ~name:"equal specs intern to one value" ~count:500
    (QCheck.make
       ~print:(fun (p, lp, med) ->
         Fmt.str "path=%a lp=%d med=%d" Fmt.(Dump.list int) p lp med)
       attrs_spec_gen)
    (fun spec ->
      let a = build spec and b = build spec in
      a == b && Bgp.Attrs.equal a b
      && Bgp.Attrs.id a = Bgp.Attrs.id b
      && Bgp.Attrs.wire_id a = Bgp.Attrs.wire_id b)

let prop_table_growth_bounded =
  QCheck.Test.make ~name:"intern table growth bounded by distinct specs" ~count:20
    (QCheck.make
       ~print:(fun l -> string_of_int (List.length l))
       QCheck.Gen.(list_size (int_range 1 60) attrs_spec_gen))
    (fun specs ->
      let before = (Bgp.Attrs.intern_stats ()).Bgp.Attrs.distinct_full in
      List.iter (fun s -> ignore (build s)) specs;
      (* interning many copies of the same specs again must add nothing *)
      List.iter (fun s -> ignore (build s)) specs;
      let after = (Bgp.Attrs.intern_stats ()).Bgp.Attrs.distinct_full in
      let distinct = List.length (List.sort_uniq compare specs) in
      after - before <= distinct)

let test_intern_stats_monotone () =
  let s0 = Bgp.Attrs.intern_stats () in
  let a = Bgp.Attrs.make ~as_path:[ asn 64999 ] ~next_hop:nh () in
  ignore (Bgp.Attrs.with_local_pref a 77);
  let s1 = Bgp.Attrs.intern_stats () in
  Alcotest.(check bool) "paths monotone" true
    (s1.Bgp.Attrs.distinct_paths >= s0.Bgp.Attrs.distinct_paths);
  Alcotest.(check bool) "wire monotone" true
    (s1.Bgp.Attrs.distinct_wire >= s0.Bgp.Attrs.distinct_wire);
  (* same wire attrs under two local-prefs: one wire entry, two full *)
  Alcotest.(check bool) "full >= wire" true
    (s1.Bgp.Attrs.distinct_full >= s1.Bgp.Attrs.distinct_wire)

let suite =
  [
    Alcotest.test_case "prepend" `Quick test_prepend;
    Alcotest.test_case "path endpoints" `Quick test_path_endpoints;
    Alcotest.test_case "wire equality" `Quick test_wire_equal_ignores_local_pref;
    Alcotest.test_case "communities" `Quick test_communities;
    Alcotest.test_case "origin rank" `Quick test_origin_rank;
    Alcotest.test_case "intern physical equality" `Quick test_intern_physical_equality;
    QCheck_alcotest.to_alcotest prop_same_spec_physically_equal;
    QCheck_alcotest.to_alcotest prop_table_growth_bounded;
    Alcotest.test_case "intern stats monotone" `Quick test_intern_stats_monotone;
  ]
