lib/bgp/config.ml: Engine
