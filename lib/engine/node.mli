(** The node actor runtime: the uniform lifecycle every emulated
    component (BGP router, SDN switch, cluster speaker/controller, route
    collector) runs on.

    A node owns:
    - a lifecycle state machine [Created -> Up -> Down -> Up -> ...] with
      [crash]/[restart] transitions and registered hooks;
    - a bounded ingress mailbox of pending work, with drop accounting
      (typed views of the mailbox are created with {!port});
    - its timers, auto-cancelled when the node crashes;
    - epoch-guarded scheduling: events scheduled through the node are
      silently discarded if the node crashed after they were scheduled;
    - an optional per-node RNG stream (supplied by the component so the
      split order from the root RNG is unchanged by this runtime);
    - [snapshot]/[restore] hooks returning an opaque in-memory state blob,
      the basis of whole-network checkpointing.

    The runtime is deliberately behaviour-preserving: when no lifecycle
    action is taken, delivery through a port is the same synchronous
    handler call a raw closure would have made, no extra RNG draws are
    taken and no metric series are registered until a drop or lifecycle
    transition actually happens. *)

type lifecycle = Created | Up | Down

type blob = ..
(** Component state blobs are in-memory values: each component extends
    this type with its own constructor. *)

type t

val create :
  ?kind:string ->
  ?rng:Rng.t ->
  ?mailbox_capacity:int ->
  Sim.t ->
  name:string ->
  t
(** [kind] labels the component family ("router", "switch", "speaker",
    "controller", "collector"); [rng] is the component's already-split
    stream (never split here — split order must stay byte-identical);
    [mailbox_capacity] bounds queued-but-unprocessed deliveries
    (default 4096). *)

val sim : t -> Sim.t

val name : t -> string

val kind : t -> string

val lifecycle : t -> lifecycle

val is_up : t -> bool

val epoch : t -> int
(** Incremented by every crash; epoch-guarded events compare against it. *)

val rng : t -> Rng.t option

(** {1 Lifecycle} *)

val on_start : t -> (first:bool -> unit) -> unit
(** Hook run on [Created -> Up] ([first = true]) and on every restart
    ([first = false]); registration order is execution order. *)

val on_crash : t -> (unit -> unit) -> unit
(** Hook run on [Up -> Down], after owned timers are cancelled and the
    mailbox is flushed. *)

val start : t -> unit
(** [Created | Down -> Up]; no-op when already up. *)

val crash : t -> unit
(** [Up -> Down]: bump the epoch, cancel owned timers, discard the
    mailbox, run the crash hooks.  No-op unless up.  While down, port
    deliveries are refused and guarded events do not fire. *)

val restart : t -> unit
(** [crash] (if up) followed by [start]: the component's restart hooks
    see a process that lost all volatile state. *)

(** {1 Owned timers} *)

val timer : ?category:string -> t -> name:string -> callback:(unit -> unit) -> Timer.t
(** Create a timer owned by this node (cancelled on crash, captured by
    {!state}). *)

val own_timer : t -> Timer.t -> unit
(** Adopt an externally created timer. *)

val owned_timers : t -> Timer.t list
(** In adoption order. *)

(** {1 Epoch-guarded scheduling} *)

val schedule_after : ?category:string -> t -> Time.span -> (unit -> unit) -> unit

val schedule_at : ?category:string -> t -> Time.t -> (unit -> unit) -> unit
(** Like {!Sim.schedule_at} but the action is skipped if the node crashed
    (epoch changed) or is down when the event fires. *)

(** {1 Mailbox and typed ports} *)

type 'msg port
(** A typed ingress into the node's mailbox. *)

val port : t -> handler:(from:int -> 'msg -> unit) -> 'msg port

val port_node : 'msg port -> t

val deliver : 'msg port -> from:int -> 'msg -> bool
(** Enqueue and (unless re-entrant) immediately process one message.
    [false] when the node is not up ([`node down`]) or the mailbox is
    full ([`queue overflow`] — counted in [node_mailbox_dropped_total]
    and visible via {!mailbox_dropped}). *)

val mailbox_depth : t -> int
(** Messages enqueued but not yet processed (non-zero only during
    re-entrant processing). *)

val mailbox_dropped : t -> int

val processed : t -> int
(** Messages the node has processed over its lifetime. *)

val crashes : t -> int

(** {1 Snapshot / restore} *)

val set_snapshot : t -> (unit -> blob) -> unit

val set_restore : t -> (blob -> unit) -> unit

type state = {
  s_lifecycle : lifecycle;
  s_epoch : int;
  s_timers : (string * Time.t) list;  (** armed owned timers: (name, due) *)
  s_blob : blob option;  (** the component hook's opaque state *)
}

val state : t -> state
(** Capture lifecycle, armed owned timers and the component blob. *)

val restore_state : t -> state -> unit
(** Reinstall a captured state into a freshly constructed node: sets the
    lifecycle {e without} running start/crash hooks, re-arms owned timers
    by name at their recorded absolute expiry (unknown names are
    ignored), then hands the blob to the restore hook. *)

val pp_lifecycle : Format.formatter -> lifecycle -> unit
