(* The BGP decision process (RFC 4271 §9.1 order, restricted to the
   attributes this single-router-per-AS emulation carries):

   1. higher LOCAL_PREF
   2. locally originated over learned
   3. shorter AS_PATH
   4. lower ORIGIN (IGP < EGP < Incomplete)
   5. lower MED (compared across all candidates, i.e. always-compare-med,
      which is well-defined in a deterministic emulation)
   6. lower neighbor ASN (stands in for the lowest-router-id tiebreak)

   The order is total and deterministic, so route selection — and hence the
   whole emulation — is reproducible. *)

let source_rank r = match Route.source r with Route.Local -> 0 | Route.Ebgp _ -> 1

let neighbor_key r =
  match Route.source r with
  | Route.Local -> -1
  | Route.Ebgp p -> Net.Asn.to_int p

(* Straight-line comparisons: this is the single hottest comparator in the
   emulation (every decision-process run calls it per candidate pair), so
   it must not allocate — no closure lists, each step evaluated only when
   the previous ones tie. *)
let compare (a : Route.t) (b : Route.t) =
  let aa = Route.attrs a and ba = Route.attrs b in
  let c = Int.compare ba.Attrs.local_pref aa.Attrs.local_pref in
  if c <> 0 then c
  else
    let c = Int.compare (source_rank a) (source_rank b) in
    if c <> 0 then c
    else
      let c = Int.compare (Attrs.path_length aa) (Attrs.path_length ba) in
      if c <> 0 then c
      else
        let c = Int.compare (Attrs.origin_rank aa.Attrs.origin) (Attrs.origin_rank ba.Attrs.origin) in
        if c <> 0 then c
        else
          let c = Int.compare aa.Attrs.med ba.Attrs.med in
          if c <> 0 then c else Int.compare (neighbor_key a) (neighbor_key b)

let better a b = compare a b < 0

let select = function
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun best r -> if better r best then r else best) first rest)

(* Explain the comparison for debugging/teaching: which step decided. *)
let explain a b =
  let steps =
    [
      ("local_pref", fun () ->
        Int.compare (Route.attrs b).Attrs.local_pref (Route.attrs a).Attrs.local_pref);
      ("local_origin", fun () -> Int.compare (source_rank a) (source_rank b));
      ("as_path_length", fun () ->
        Int.compare (Attrs.path_length (Route.attrs a)) (Attrs.path_length (Route.attrs b)));
      ("origin", fun () ->
        Int.compare
          (Attrs.origin_rank (Route.attrs a).Attrs.origin)
          (Attrs.origin_rank (Route.attrs b).Attrs.origin));
      ("med", fun () -> Int.compare (Route.attrs a).Attrs.med (Route.attrs b).Attrs.med);
      ("neighbor", fun () -> Int.compare (neighbor_key a) (neighbor_key b));
    ]
  in
  let rec eval = function
    | [] -> ("tie", 0)
    | (name, f) :: rest ->
      let c = f () in
      if c <> 0 then (name, c) else eval rest
  in
  eval steps
