(* CAIDA AS-relationship dataset support.

   The framework builds topologies from the CAIDA serial-1 files
   (http://www.caida.org/data/as-relationships/), whose line format is

     <provider-as>|<customer-as>|-1        (provider-to-customer)
     <peer-as>|<peer-as>|0                 (peer-to-peer)
     <sibling-as>|<sibling-as>|2           (siblings, older serials)

   with '#' comment lines.  The sealed environment has no CAIDA snapshot,
   so [generate] also synthesizes an Internet-like relationship graph with
   the same structure: a clique of tier-1s, mid-tier transit ASes
   multi-homed to providers and peering laterally, and stub ASes — the
   degree/customer-cone shape CAIDA data exhibits. *)

type parse_error = { line : int; content : string; reason : string }

let pp_parse_error ppf e = Fmt.pf ppf "line %d (%S): %s" e.line e.content e.reason

let parse_line lineno line =
  let trimmed = String.trim line in
  if trimmed = "" || String.length trimmed > 0 && trimmed.[0] = '#' then Ok None
  else
    match String.split_on_char '|' trimmed with
    | a :: b :: rel :: _ -> (
      match (Net.Asn.of_string a, Net.Asn.of_string b, String.trim rel) with
      | Some a, Some b, "-1" ->
        (* a provider, b customer: the link's C2p orientation is b -> a. *)
        Ok (Some (Spec.link ~rel:Spec.C2p b a))
      | Some a, Some b, "0" -> Ok (Some (Spec.link ~rel:Spec.P2p a b))
      | Some a, Some b, "2" -> Ok (Some (Spec.link ~rel:Spec.S2s a b))
      | Some _, Some _, r ->
        Error { line = lineno; content = trimmed; reason = Fmt.str "unknown relationship %S" r }
      | _ -> Error { line = lineno; content = trimmed; reason = "bad AS number" })
    | _ -> Error { line = lineno; content = trimmed; reason = "expected as1|as2|rel" }

let parse_string ?(title = "caida") text =
  let lines = String.split_on_char '\n' text in
  (* Malformed structure is rejected, not repaired: a self-loop or a
     repeated AS pair (even with the same relationship) means the file is
     not a function from unordered pairs to relationships, and silently
     merging has historically hidden generator bugs. *)
  let seen = Hashtbl.create 64 in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line lineno line with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some (l : Spec.link_spec)) ->
        if Net.Asn.equal l.a l.b then
          Error
            {
              line = lineno;
              content = String.trim line;
              reason = Fmt.str "self-loop on AS%a" Net.Asn.pp l.a;
            }
        else begin
          let key = if Net.Asn.compare l.a l.b <= 0 then (l.a, l.b) else (l.b, l.a) in
          match Hashtbl.find_opt seen key with
          | Some first_line ->
            Error
              {
                line = lineno;
                content = String.trim line;
                reason =
                  Fmt.str "duplicate AS pair %a|%a (first related at line %d)" Net.Asn.pp l.a
                    Net.Asn.pp l.b first_line;
              }
          | None ->
            Hashtbl.replace seen key lineno;
            go (lineno + 1) (l :: acc) rest
        end
      | Error e -> Error e)
  in
  match go 1 [] lines with
  | Error e -> Error e
  | Ok links ->
    let asns = Hashtbl.create 64 in
    List.iter
      (fun (l : Spec.link_spec) ->
        Hashtbl.replace asns l.a ();
        Hashtbl.replace asns l.b ())
      links;
    let nodes =
      Hashtbl.fold (fun asn () acc -> asn :: acc) asns []
      |> List.sort Net.Asn.compare
      |> List.map (fun asn -> Spec.node asn)
    in
    Ok (Spec.make ~title ~nodes ~links)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string ~title:(Filename.basename path) text

let render spec =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# CAIDA AS-relationship serial-1 format\n";
  List.iter
    (fun (l : Spec.link_spec) ->
      match l.rel with
      | Spec.C2p ->
        (* provider|customer|-1: provider is l.b *)
        Buffer.add_string
          buf
          (Fmt.str "%d|%d|-1\n" (Net.Asn.to_int l.b) (Net.Asn.to_int l.a))
      | Spec.P2p -> Buffer.add_string buf (Fmt.str "%d|%d|0\n" (Net.Asn.to_int l.a) (Net.Asn.to_int l.b))
      | Spec.S2s -> Buffer.add_string buf (Fmt.str "%d|%d|2\n" (Net.Asn.to_int l.a) (Net.Asn.to_int l.b))
      | Spec.Open ->
        Buffer.add_string buf (Fmt.str "%d|%d|0\n" (Net.Asn.to_int l.a) (Net.Asn.to_int l.b)))
    (Spec.links spec);
  Buffer.contents buf

(* Synthetic Internet-like relationship graph.

   [tier1] ASes form a peering clique; each of [tier2] transit ASes buys
   from 2 random tier-1s and peers with ~20% of other tier-2s; each stub
   buys from 1-2 transit ASes (dual-homing probability [multihome]). *)
let generate ?(tier1 = 4) ?(tier2 = 12) ?(stubs = 34) ?(multihome = 0.4) rng =
  if tier1 < 1 || tier2 < 1 || stubs < 0 then invalid_arg "Caida.generate";
  let total = tier1 + tier2 + stubs in
  let asn = Artificial.asn in
  let links = ref [] in
  let add l = links := l :: !links in
  (* Tier-1 clique: settlement-free peers. *)
  for i = 0 to tier1 - 1 do
    for j = i + 1 to tier1 - 1 do
      add (Spec.link ~rel:Spec.P2p (asn i) (asn j))
    done
  done;
  (* Tier-2: customers of two distinct tier-1s, lateral peering. *)
  for i = tier1 to tier1 + tier2 - 1 do
    let p1 = Engine.Rng.int rng tier1 in
    let p2 = if tier1 = 1 then p1 else (p1 + 1 + Engine.Rng.int rng (tier1 - 1)) mod tier1 in
    add (Spec.link ~rel:Spec.C2p (asn i) (asn p1));
    if p2 <> p1 then add (Spec.link ~rel:Spec.C2p (asn i) (asn p2))
  done;
  for i = tier1 to tier1 + tier2 - 1 do
    for j = i + 1 to tier1 + tier2 - 1 do
      if Engine.Rng.chance rng 0.2 then add (Spec.link ~rel:Spec.P2p (asn i) (asn j))
    done
  done;
  (* Stubs: customers of one or two tier-2s. *)
  for i = tier1 + tier2 to total - 1 do
    let t1 = tier1 + Engine.Rng.int rng tier2 in
    add (Spec.link ~rel:Spec.C2p (asn i) (asn t1));
    if Engine.Rng.chance rng multihome && tier2 > 1 then begin
      let t2 = tier1 + ((t1 - tier1 + 1 + Engine.Rng.int rng (tier2 - 1)) mod tier2) in
      if t2 <> t1 then add (Spec.link ~rel:Spec.C2p (asn i) (asn t2))
    end
  done;
  Spec.make
    ~title:(Fmt.str "caida-synth-%d" total)
    ~nodes:(List.init total (fun i -> Spec.node (asn i)))
    ~links:(List.rev !links)

let tier1_asns ~tier1 = List.init tier1 Artificial.asn

let stub_asns ~tier1 ~tier2 ~stubs =
  List.init stubs (fun i -> Artificial.asn (tier1 + tier2 + i))
