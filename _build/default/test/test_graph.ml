(* Net.Graph: structure, Dijkstra, components. *)

open Net

let test_add_remove () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  Graph.add_edge ~w:3.0 g 2 3;
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  Alcotest.(check int) "edges" 2 (Graph.edge_count g);
  Alcotest.(check bool) "mem_edge both ways" true (Graph.mem_edge g 2 1);
  Alcotest.(check (option (float 0.0))) "weight" (Some 3.0) (Graph.weight g 3 2);
  Graph.remove_edge g 1 2;
  Alcotest.(check int) "edge removed" 1 (Graph.edge_count g);
  Alcotest.(check bool) "no longer adjacent" false (Graph.mem_edge g 1 2)

let test_replace_weight () =
  let g = Graph.create () in
  Graph.add_edge ~w:1.0 g 1 2;
  Graph.add_edge ~w:9.0 g 1 2;
  Alcotest.(check int) "still one edge" 1 (Graph.edge_count g);
  Alcotest.(check (option (float 0.0))) "weight replaced" (Some 9.0) (Graph.weight g 1 2)

let test_self_loop_rejected () =
  let g = Graph.create () in
  match Graph.add_edge g 1 1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "self-loop must raise"

let test_neighbors_sorted () =
  let g = Graph.create () in
  List.iter (fun v -> Graph.add_edge g 5 v) [ 9; 2; 7; 1 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 7; 9 ] (Graph.succ g 5)

let test_dijkstra_weighted () =
  let g = Graph.create () in
  Graph.add_edge ~w:1.0 g 1 2;
  Graph.add_edge ~w:1.0 g 2 3;
  Graph.add_edge ~w:5.0 g 1 3;
  Graph.add_edge ~w:1.0 g 3 4;
  Alcotest.(check (option (float 1e-9))) "dist via middle" (Some 3.0) (Graph.distance g 1 4);
  Alcotest.(check (option (list int))) "path" (Some [ 1; 2; 3; 4 ]) (Graph.shortest_path g 1 4)

let test_dijkstra_unreachable () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  Graph.add_node g 99;
  Alcotest.(check (option (float 0.0))) "unreachable" None (Graph.distance g 1 99);
  Alcotest.(check (option (list int))) "no path" None (Graph.shortest_path g 1 99)

let test_shortest_path_self () =
  let g = Graph.create () in
  Graph.add_node g 1;
  Alcotest.(check (option (list int))) "self path" (Some [ 1 ]) (Graph.shortest_path g 1 1)

let test_directed () =
  let g = Graph.create ~directed:true () in
  Graph.add_edge g 1 2;
  Alcotest.(check bool) "forward" true (Graph.mem_edge g 1 2);
  Alcotest.(check bool) "no backward" false (Graph.mem_edge g 2 1);
  Alcotest.(check (option (list int))) "no reverse path" None (Graph.shortest_path g 2 1)

let test_components () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  Graph.add_edge g 3 4;
  Graph.add_edge g 4 5;
  Graph.add_node g 9;
  Alcotest.(check (list (list int))) "components" [ [ 1; 2 ]; [ 3; 4; 5 ]; [ 9 ] ]
    (Graph.components g);
  Alcotest.(check bool) "not connected" false (Graph.is_connected g);
  Graph.add_edge g 2 3;
  Graph.add_edge g 5 9;
  Alcotest.(check bool) "now connected" true (Graph.is_connected g)

let test_remove_node () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  Graph.remove_node g 2;
  Alcotest.(check int) "nodes" 2 (Graph.node_count g);
  Alcotest.(check int) "edges gone" 0 (Graph.edge_count g);
  Alcotest.(check (list int)) "no dangling adjacency" [] (Graph.succ g 1)

let test_copy_independent () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  let g' = Graph.copy g in
  Graph.add_edge g' 2 3;
  Alcotest.(check int) "copy grew" 2 (Graph.edge_count g');
  Alcotest.(check int) "original unchanged" 1 (Graph.edge_count g)

(* On unit-weight graphs Dijkstra distance = BFS hop count. *)
let prop_dijkstra_matches_bfs =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 12 in
      let* edges = list_size (int_range 1 30) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, edges))
  in
  QCheck.Test.make ~name:"unit-weight dijkstra = bfs levels" ~count:200
    (QCheck.make
       ~print:(fun (n, e) -> Fmt.str "n=%d edges=%d" n (List.length e))
       gen)
    (fun (n, edges) ->
      let g = Graph.create () in
      for v = 0 to n - 1 do
        Graph.add_node g v
      done;
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v) edges;
      (* BFS levels from 0 *)
      let level = Hashtbl.create 16 in
      Hashtbl.replace level 0 0;
      let q = Queue.create () in
      Queue.push 0 q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        let d = Hashtbl.find level v in
        List.iter
          (fun (w, _) ->
            if not (Hashtbl.mem level w) then begin
              Hashtbl.replace level w (d + 1);
              Queue.push w q
            end)
          (Graph.neighbors g v)
      done;
      let dist, _ = Graph.dijkstra g 0 in
      List.for_all
        (fun v ->
          match (Hashtbl.find_opt level v, Hashtbl.find_opt dist v) with
          | None, None -> true
          | Some l, Some d -> Float.equal (float_of_int l) d
          | _ -> false)
        (Graph.nodes g))

let suite =
  [
    Alcotest.test_case "add/remove edges" `Quick test_add_remove;
    Alcotest.test_case "replace weight" `Quick test_replace_weight;
    Alcotest.test_case "self-loop rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
    Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
    Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "path to self" `Quick test_shortest_path_self;
    Alcotest.test_case "directed graph" `Quick test_directed;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "remove node" `Quick test_remove_node;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    QCheck_alcotest.to_alcotest prop_dijkstra_matches_bfs;
  ]
