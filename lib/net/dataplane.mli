(** Allocation-free data-plane fast path: a compiled, frozen snapshot of
    forwarding state (legacy FIBs + SDN flow tables + local delivery sets
    + link liveness) over dense node indices, walked by packed
    int-encoded probes.  One {!forward} call resolves a probe's whole
    path — no [Packet.t] record, no per-hop [option], no allocation at
    all on the hot path.  Compile with the builder functions (allocation
    there is fine), then fire probes; recompile after the control plane
    changes.  Not domain-safe: one snapshot per domain. *)

type t

(** A probe's terminal classification.  [Looped] means the walk revisited
    a node: with frozen state that proves a persistent forwarding cycle
    (a live packet would continue around it and die of TTL). *)
type fate = Delivered | Blackholed | Looped | Ttl_expired

val fate_code : fate -> int
(** Stable int codes 0..3, in declaration order. *)

val fate_of_code : int -> fate
(** @raise Invalid_argument outside 0..3. *)

val fate_to_string : fate -> string
(** ["delivered"], ["blackhole"], ["loop"], ["ttl_expired"] — the metric
    label values. *)

val pp_fate : Format.formatter -> fate -> unit

val drop : int
(** The non-index action code ([-1]): no route / drop / controller punt. *)

val create : asns:int array -> t
(** A snapshot over these nodes; dense index = array position. *)

val size : t -> int

val asn_at : t -> int -> int
(** The AS number at a dense index. *)

val index_of : t -> int -> int
(** Dense index of an AS number, [-1] when absent. *)

(** {2 Building} *)

val add_local : t -> int -> Ipv4.prefix -> unit
(** Addresses in this prefix are locally delivered at the node. *)

val add_local_addr : t -> int -> Ipv4.addr -> unit
(** Single-address (/32) local delivery — router loopbacks. *)

val set_fib : t -> int -> int Fib.t -> unit
(** Legacy node: an LPM trie whose values are action codes (dense next
    index, or {!drop}).  The trie is aliased, not copied — hand the
    snapshot its own trie. *)

val set_rules : t -> int -> nets:int array -> masks:int array -> acts:int array -> unit
(** SDN node: a flow table flattened in its (priority desc, length desc)
    lookup order as {!Ipv4.addr_to_bits} networks, {!Ipv4.mask_bits}
    masks and action codes; first match wins, exactly like the live
    table.  @raise Invalid_argument on length mismatch. *)

val set_link : t -> int -> int -> bool -> unit
(** Directed link usability between dense indices (set both ways for a
    bidirectional link). *)

(** {2 The hot path} *)

val forward : t -> src:int -> dst_bits:int -> ttl:int -> int
(** Forward one probe (src dense index, destination
    {!Ipv4.addr_to_bits}, TTL) to its terminal fate, mirroring the live
    per-hop order: local delivery, then TTL expiry, then lookup, then
    link liveness.  Returns the packed int [(hops lsl 2) lor fate-code];
    decode with {!result_fate}/{!result_hops}.  Allocates nothing.
    @raise Invalid_argument for a bad [src] index. *)

val result_fate : int -> fate

val result_fate_code : int -> int
(** The raw 0..3 fate code, for counting without constructors. *)

val result_hops : int -> int

val last_path : t -> int array
(** Dense-index path of the most recent {!forward} (copies; diagnostics
    and tests, not the hot path). *)

val pp : Format.formatter -> t -> unit
