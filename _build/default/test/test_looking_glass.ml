(* Framework.Looking_glass: state dumps contain what they claim. *)

let asn = Topology.Artificial.asn

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n > 0 && scan 0

let build () =
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 4) [ asn 2; asn 3 ] in
  let net = Framework.Network.create ~config:Framework.Config.fast_test ~seed:51 spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  ignore (Framework.Network.settle net);
  net

let test_router_rib () =
  let net = build () in
  let r1 = Option.get (Framework.Network.router net (asn 1)) in
  let dump = Framework.Looking_glass.router_rib r1 in
  Alcotest.(check bool) "names the router" true (contains dump "AS65002");
  Alcotest.(check bool) "shows the prefix" true (contains dump "100.64.0.0/24");
  Alcotest.(check bool) "shows the best path" true (contains dump "[AS65001]");
  Alcotest.(check bool) "shows alternates" true (contains dump "alt via")

let test_switch_flows () =
  let net = build () in
  let sw = Option.get (Framework.Network.switch net (asn 2)) in
  let dump = Framework.Looking_glass.switch_flows sw in
  Alcotest.(check bool) "names the switch" true (contains dump "AS65003");
  Alcotest.(check bool) "shows a rule" true (contains dump "100.64.0.0/24")

let test_controller_state () =
  let net = build () in
  let ctrl = Option.get (Framework.Network.controller net) in
  let dump = Framework.Looking_glass.controller_state ctrl in
  Alcotest.(check bool) "member count" true (contains dump "members=2");
  Alcotest.(check bool) "decisions listed" true (contains dump "exit via AS65001")

let test_network_state () =
  let net = build () in
  let dump = Framework.Looking_glass.network_state net in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains dump needle))
    [ "looking glass"; "AS65001"; "flow table"; "controller"; "collector" ]

let suite =
  [
    Alcotest.test_case "router rib" `Quick test_router_rib;
    Alcotest.test_case "switch flows" `Quick test_switch_flows;
    Alcotest.test_case "controller state" `Quick test_controller_state;
    Alcotest.test_case "network state" `Quick test_network_state;
  ]
