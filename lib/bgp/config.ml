(* BGP timing configuration.

   Defaults mirror the Quagga setup the paper's framework drives: eBGP
   MRAI of 30 s with multiplicative jitter drawn from [0.75, 1.0] (Quagga
   jitters its advertisement-interval the same way), per-update processing
   delay in the tens of milliseconds, and fast session-down detection
   (directly connected eBGP notices interface-down immediately; we allow a
   small detection delay). *)

type t = {
  mrai : Engine.Time.span;
  mrai_jitter_lo : float;
  mrai_jitter_hi : float;
  mrai_on_withdrawals : bool;
      (* RFC 4271 exempts explicit withdrawals from MinRouteAdvertisementInterval *)
  proc_delay_min : Engine.Time.span;
  proc_delay_max : Engine.Time.span;
  session_down_detect : Engine.Time.span;
  session_open_delay : Engine.Time.span; (* re-open backoff after link recovery *)
  keepalives : keepalive option;
      (* KEEPALIVE/hold-timer liveness (RFC 4271 §4.4).  Off by default:
         periodic keepalives keep the event queue non-empty forever, so
         experiments that enable them must detect convergence with
         quiet-period waiting (Convergence.wait_quiet) instead of queue
         exhaustion.  Enable to detect silent failures (e.g. total loss
         on a link that never reports down). *)
  reconnect : Session.backoff option;
      (* Exponential-backoff retry of unanswered OPENs.  Off by default:
         a bounded retry schedule still extends queue drain, and most
         experiments rely on the link watcher to re-open sessions. *)
}

and keepalive = { interval : Engine.Time.span; hold_time : Engine.Time.span }

(* Quagga defaults: keepalive 60 s, hold 180 s. *)
let default_keepalive = { interval = Engine.Time.sec 60; hold_time = Engine.Time.sec 180 }

(* [mrai_on_withdrawals] defaults to true: Quagga (the paper's router
   software) paces withdrawals through the same per-peer advertisement
   timer as announcements — the "WRATE" behaviour that makes withdrawal
   convergence exhibit MRAI-spaced path-exploration rounds.  RFC 4271
   exempts explicit withdrawals; set false for RFC-style pacing (we
   benchmark both — ablation A4). *)
let default =
  {
    mrai = Engine.Time.sec 30;
    mrai_jitter_lo = 0.75;
    mrai_jitter_hi = 1.0;
    mrai_on_withdrawals = true;
    proc_delay_min = Engine.Time.ms 10;
    proc_delay_max = Engine.Time.ms 50;
    session_down_detect = Engine.Time.ms 500;
    session_open_delay = Engine.Time.sec 1;
    keepalives = None;
    reconnect = None;
  }

let with_keepalives ?(keepalive = default_keepalive) t = { t with keepalives = Some keepalive }

let with_reconnect ?(backoff = Session.default_backoff) t = { t with reconnect = Some backoff }

let with_mrai t span = { t with mrai = span }

let no_jitter t = { t with mrai_jitter_lo = 1.0; mrai_jitter_hi = 1.0 }

(* Draw one jittered MRAI interval. *)
let jittered_mrai t rng =
  if t.mrai_jitter_lo >= t.mrai_jitter_hi then Engine.Time.span_scale t.mrai t.mrai_jitter_lo
  else Engine.Rng.jitter_span rng t.mrai ~lo:t.mrai_jitter_lo ~hi:t.mrai_jitter_hi

(* Draw one per-update processing delay. *)
let processing_delay t rng =
  let lo = Engine.Time.to_us t.proc_delay_min in
  let hi = Engine.Time.to_us t.proc_delay_max in
  if hi <= lo then t.proc_delay_min
  else Engine.Time.us (Engine.Rng.int_range rng lo hi)
