(** Framework-level experiment configuration. *)

type t = {
  bgp : Bgp.Config.t;
  damping : Bgp.Damping.config option;
      (** RFC 2439 route-flap damping on legacy routers *)
  controller : Cluster_ctl.Controller.config;
  speaker_mrai : Bgp.Config.t option;
      (** pace the cluster speaker's announcements like a conventional BGP
          implementation ([None] = ExaBGP-style immediate emission) *)
  default_link_delay : Engine.Time.span;
  collector_link_delay : Engine.Time.span;
  control_link_delay : Engine.Time.span;
  wire_transport : bool;
      (** pass every BGP message through the RFC 4271 binary codec at the
          sender, as a TCP transport would *)
  speaker_liveness : Bgp.Config.keepalive option;
      (** KEEPALIVE/hold timers on the cluster speaker's external sessions
          ([None] = sessions never hold-expire) *)
  switch_liveness : Sdn.Switch.liveness option;
      (** member switches heartbeat the controller and degrade into a
          legacy-BGP fallback route when the control plane goes silent *)
  flow_idle_timeout : Engine.Time.span option;
  flow_hard_timeout : Engine.Time.span option;
      (** decay timeouts stamped on proactively installed flow rules *)
  causal : Engine.Causal.mode;
      (** causal span tracing mode; the default [Ring 4096] keeps a cheap
          always-on flight recorder, [Full] retains every span for
          critical-path analysis and Chrome/JSONL export *)
  collector_retention : Bgp.Collector.retention;
      (** [Counts_only] drops the collector's event log, keeping the
          update count and per-prefix last-update instants — constant
          memory per prefix for Internet-scale runs *)
}

val default : t
(** The paper's Quagga-like deployment: 30 s jittered MRAI (withdrawals
    included), 2 s controller recomputation delay. *)

val fast_test : t
(** Second-scale timers for unit tests. *)

val failure_test : t
(** [fast_test] with the whole failure-detection stack armed: router and
    speaker KEEPALIVE 2 s / hold 6 s, OPEN-retry backoff, switch echo 1 s
    with fallback after 3 s of control silence, 45 s flow hard timeout.
    Scenarios with this config never drain the event queue — detect
    convergence with quiet-period waiting. *)

val with_mrai : t -> Engine.Time.span -> t

val with_recompute_delay : t -> Engine.Time.span -> t
