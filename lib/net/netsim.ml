(* The emulated network fabric: nodes, links, and delayed message delivery.

   Parametric in the message payload so the protocol layers (BGP, OpenFlow,
   data packets) define their own message types without this module
   depending on them.  Messages in flight when their link fails are dropped
   at delivery time, like frames on a cut wire.

   Receivers are attached either as a raw handler closure (legacy, kept for
   tests) or as an [Engine.Node] port, which adds lifecycle awareness: a
   down node's traffic is dropped with reason [Node_down] instead of being
   handed to stale state.

   Every silent drop is accounted per reason under
   [net_messages_dropped_total{reason=...}]; the unlabeled aggregate series
   is kept (registered eagerly, as before) so existing dashboards and the
   byte-identical export guarantee for drop-free runs are preserved — the
   labeled children only appear once a drop of that reason happens. *)

type 'a handler = from:int -> 'a -> unit

type link_watcher = link:Link.t -> peer:int -> up:bool -> unit

type 'a sink = Handler of 'a handler | Port of 'a Engine.Node.port

type drop_reason = Link_down | Loss | Queue | No_handler | Node_down | Session_down

let drop_reason_label = function
  | Link_down -> "link_down"
  | Loss -> "loss"
  | Queue -> "queue"
  | No_handler -> "no_handler"
  | Node_down -> "node_down"
  | Session_down -> "session_down"

type 'a node = {
  id : int;
  name : string;
  mutable sink : 'a sink option;
  mutable link_watcher : link_watcher option;
}

type 'a flight = {
  f_id : int;
  f_src : int;
  f_dst : int;
  f_at : Engine.Time.t;
  f_payload : 'a;
}

type 'a in_flight = { src : int; dst : int; deliver_at : Engine.Time.t; payload : 'a }

type 'a remote = {
  r_src : int;
  r_dst : int;
  r_at : Engine.Time.t;
  r_seq : int;
  r_payload : 'a;
}

type 'a t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  canonical : bool;
  nodes : (int, 'a node) Hashtbl.t;
  links : (Link.id, Link.t) Hashtbl.t;
  by_pair : (int * int, Link.id) Hashtbl.t;
  mutable next_link_id : int;
  flights : (int, 'a flight) Hashtbl.t;
  mutable next_flight_id : int;
  (* per directed (src, dst) channel send sequence — canonical mode only.
     Counts admitted sends, so delivery order on a FIFO link equals send
     order and the sequence is independent of how nodes are partitioned
     across shards (only the owning shard ever sends from a node). *)
  chan_seqs : (int * int, int ref) Hashtbl.t;
  mutable remote : ((int -> bool) * ('a remote -> unit)) option;
  sent_c : Engine.Metrics.Counter.t;
  delivered_c : Engine.Metrics.Counter.t;
  dropped_c : Engine.Metrics.Counter.t;
  dropped_by : (drop_reason, Engine.Metrics.Counter.t) Hashtbl.t;
  drop_counts : (drop_reason, int) Hashtbl.t;
}

let create sim =
  let m = Engine.Sim.metrics sim in
  {
    sim;
    rng = Engine.Rng.split (Engine.Sim.rng sim);
    canonical = Engine.Sim.order sim = Engine.Sim.Canonical;
    nodes = Hashtbl.create 64;
    links = Hashtbl.create 64;
    by_pair = Hashtbl.create 64;
    next_link_id = 0;
    flights = Hashtbl.create 64;
    next_flight_id = 0;
    chan_seqs = Hashtbl.create 64;
    remote = None;
    sent_c =
      Engine.Metrics.counter m ~help:"messages accepted onto a link" "net_messages_sent_total";
    delivered_c =
      Engine.Metrics.counter m ~help:"messages handed to a receiver"
        "net_messages_delivered_total";
    dropped_c =
      Engine.Metrics.counter m
        ~help:"messages lost to link failure, loss, queue overflow or no handler"
        "net_messages_dropped_total";
    dropped_by = Hashtbl.create 8;
    drop_counts = Hashtbl.create 8;
  }

let sim t = t.sim

let rng t = t.rng

let pair u v = if u < v then (u, v) else (v, u)

let add_node t ~id ~name =
  if Hashtbl.mem t.nodes id then invalid_arg (Fmt.str "Netsim.add_node: duplicate id %d" id);
  Hashtbl.replace t.nodes id { id; name; sink = None; link_watcher = None }

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Netsim: unknown node %d" id)

let mem_node t id = Hashtbl.mem t.nodes id

let node_name t id = (node t id).name

let node_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [] |> List.sort Int.compare

let set_handler t id h = (node t id).sink <- Some (Handler h)

let attach t id port = (node t id).sink <- Some (Port port)

let attached_node t id =
  match (node t id).sink with Some (Port p) -> Some (Engine.Node.port_node p) | _ -> None

let set_link_watcher t id w = (node t id).link_watcher <- Some w

let add_link ?(delay = Engine.Time.ms 2) ?(loss = 0.0) ?bandwidth_bps ?queue_limit t u v =
  ignore (node t u);
  ignore (node t v);
  if Hashtbl.mem t.by_pair (pair u v) then
    invalid_arg (Fmt.str "Netsim.add_link: duplicate link %d<->%d" u v);
  let id = t.next_link_id in
  t.next_link_id <- id + 1;
  let link = Link.make ?bandwidth_bps ?queue_limit ~id ~a:u ~b:v ~delay ~loss () in
  Hashtbl.replace t.links id link;
  Hashtbl.replace t.by_pair (pair u v) id;
  link

let link_by_id t id = Hashtbl.find_opt t.links id

let link_between t u v =
  Option.bind (Hashtbl.find_opt t.by_pair (pair u v)) (fun id -> Hashtbl.find_opt t.links id)

let links t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.links []
  |> List.sort (fun a b -> Int.compare (Link.id a) (Link.id b))

let neighbors t id =
  List.filter_map
    (fun l ->
      let a, b = Link.endpoints l in
      if a = id then Some b else if b = id then Some a else None)
    (links t)

let set_link_up t link up =
  if Link.is_up link <> up then begin
    Link.set_up_internal link up;
    let a, b = Link.endpoints link in
    Engine.Sim.logf t.sim ~node:"net" ~category:"link" "link %d<->%d %s" a b
      (if up then "up" else "down");
    let notify endpoint peer =
      match (node t endpoint).link_watcher with
      | Some w -> w ~link ~peer ~up
      | None -> ()
    in
    notify a b;
    notify b a
  end

let fail_link_between t u v =
  match link_between t u v with
  | Some l ->
    set_link_up t l false;
    true
  | None -> false

let recover_link_between t u v =
  match link_between t u v with
  | Some l ->
    set_link_up t l true;
    true
  | None -> false

(* The per-reason children are registered on first drop of that reason so
   drop-free runs export exactly the series they always did.  [note_drop]
   is the link-less entry point: protocol layers use it to account drops
   that never reach a wire (e.g. BGP relays discarded while a session or
   its controller channel is down). *)
let note_drop t reason =
  Engine.Metrics.Counter.inc t.dropped_c;
  let labelled =
    match Hashtbl.find_opt t.dropped_by reason with
    | Some c -> c
    | None ->
      let c =
        Engine.Metrics.counter (Engine.Sim.metrics t.sim)
          ~help:"messages lost to link failure, loss, queue overflow or no handler"
          ~labels:[ ("reason", drop_reason_label reason) ]
          "net_messages_dropped_total"
      in
      Hashtbl.replace t.dropped_by reason c;
      c
  in
  Engine.Metrics.Counter.inc labelled;
  Hashtbl.replace t.drop_counts reason
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.drop_counts reason))

let drop t link reason =
  Link.note_dropped link;
  note_drop t reason

let drops t reason = Option.value ~default:0 (Hashtbl.find_opt t.drop_counts reason)

let deliver t link ~src ~dst payload () =
  if not (Link.is_up link) then drop t link Link_down
  else if Link.loss link > 0.0 && Engine.Rng.chance t.rng (Link.loss link) then
    drop t link Loss
  else begin
    match (node t dst).sink with
    | None -> drop t link No_handler
    | Some (Handler h) ->
      Link.note_delivered link;
      Engine.Metrics.Counter.inc t.delivered_c;
      h ~from:src payload
    | Some (Port p) ->
      if not (Engine.Node.is_up (Engine.Node.port_node p)) then drop t link Node_down
      else begin
        Link.note_delivered link;
        Engine.Metrics.Counter.inc t.delivered_c;
        if not (Engine.Node.deliver p ~from:src payload) then drop t link Queue
      end
  end

(* Each scheduled delivery is tracked in [flights] until it fires, so a
   checkpoint can capture the wire contents ([in_flight]) and a restore
   can put them back ([inject_in_flight]). *)
let schedule_flight ?(kseq = 0) t link ~src ~dst deliver_at payload =
  let id = t.next_flight_id in
  t.next_flight_id <- id + 1;
  Hashtbl.replace t.flights id
    { f_id = id; f_src = src; f_dst = dst; f_at = deliver_at; f_payload = payload };
  let key =
    if t.canonical then { Engine.Sim.kclass = 1; knode = src; kseq }
    else Engine.Sim.default_key
  in
  ignore
    (Engine.Sim.schedule_at ~category:"net.deliver" ~key t.sim deliver_at (fun () ->
         Hashtbl.remove t.flights id;
         deliver t link ~src ~dst payload ()))

let next_chan_seq t ~src ~dst =
  match Hashtbl.find_opt t.chan_seqs (src, dst) with
  | Some r ->
    incr r;
    !r
  | None ->
    Hashtbl.replace t.chan_seqs (src, dst) (ref 0);
    0

let set_remote_route t ~local ~route = t.remote <- Some (local, route)

let inject_remote t { r_src; r_dst; r_at; r_seq; r_payload } =
  match link_between t r_src r_dst with
  | None -> invalid_arg (Fmt.str "Netsim.inject_remote: no link %d<->%d" r_src r_dst)
  | Some link -> schedule_flight ~kseq:r_seq t link ~src:r_src ~dst:r_dst r_at r_payload

(* [size_bits] matters only on bandwidth-limited links, where it adds
   serialization delay and FIFO queuing (drop-tail when the direction's
   queue is full). *)
let send ?(size_bits = 8 * 64) t ~src ~dst payload =
  match link_between t src dst with
  | None -> false
  | Some link when not (Link.is_up link) -> false
  | Some link -> (
    match Link.admit link ~now:(Engine.Sim.now t.sim) ~dst ~size_bits with
    | None ->
      drop t link Queue;
      true (* accepted by the sender, lost in the queue *)
    | Some delivery_at ->
      Engine.Metrics.Counter.inc t.sent_c;
      let kseq = if t.canonical then next_chan_seq t ~src ~dst else 0 in
      (match t.remote with
      | Some (local, route) when not (local dst) ->
        (* cross-shard: hand to the exchange layer, delivery is scheduled
           by [inject_remote] on the owning shard with the same key *)
        route { r_src = src; r_dst = dst; r_at = delivery_at; r_seq = kseq; r_payload = payload }
      | Some _ | None -> schedule_flight ~kseq t link ~src ~dst delivery_at payload);
      true)

let in_flight t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.flights []
  |> List.sort (fun a b -> Int.compare a.f_id b.f_id)
  |> List.map (fun f ->
         { src = f.f_src; dst = f.f_dst; deliver_at = f.f_at; payload = f.f_payload })

let inject_in_flight t { src; dst; deliver_at; payload } =
  match link_between t src dst with
  | None -> invalid_arg (Fmt.str "Netsim.inject_in_flight: no link %d<->%d" src dst)
  | Some link -> schedule_flight t link ~src ~dst deliver_at payload

(* Current topology restricted to links that are up. *)
let up_graph t =
  let g = Graph.create () in
  List.iter (fun id -> Graph.add_node g id) (node_ids t);
  List.iter
    (fun l ->
      if Link.is_up l then begin
        let a, b = Link.endpoints l in
        Graph.add_edge g a b
      end)
    (links t);
  g
