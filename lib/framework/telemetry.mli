(** Exportable convergence timelines: a periodic {!Engine.Sampler} feeding
    a metrics file in Prometheus, JSONL or CSV format.

    Snapshots are driven purely by simulated time, so identical seeds
    produce byte-identical export files. *)

type format = Prometheus | Jsonl | Csv

val format_to_string : format -> string

val format_of_path : string -> format
(** By extension: [.prom]/[.txt] → Prometheus, [.csv] → CSV, anything
    else → JSONL. *)

type t

val default_interval : Engine.Time.span
(** One simulated second. *)

val create : ?interval:Engine.Time.span -> sim:Engine.Sim.t -> path:string -> unit -> t
(** Start sampling [sim]'s registry every [interval] of simulated time.
    Nothing is written until {!finish}. *)

val snapshots : t -> Engine.Metrics.snapshot list
(** Collected so far, oldest first. *)

val close : t -> unit
(** Stop sampling and append the final settled-state snapshot.  The first
    call wins; every later {!close}/{!finish} leaves the snapshot list
    untouched, so double-finish can never duplicate the final snapshot. *)

val closed : t -> bool

val finish : t -> (int, string) result
(** {!close}, then write the file; [Ok n] is the number of snapshots it
    holds.  Filesystem failures are reported as [Error msg] rather than
    raised, and the collected snapshots remain available for a retry.
    Prometheus output contains only the final snapshot (exposition format
    is point-in-time); JSONL and CSV contain the whole timeline. *)

val json_valid : string -> bool
(** The minimal JSON syntax check behind JSONL validation (shared by
    `hybridsim trace --check` for Chrome trace-event output). *)

val validate : format -> string -> (int, string) result
(** Check [text] parses as [format]; [Ok n] is the number of samples
    (Prometheus), lines (JSONL) or rows (CSV) checked. *)

val validate_file : string -> (int, string) result
(** {!validate} on a file's contents, format inferred from its path. *)
