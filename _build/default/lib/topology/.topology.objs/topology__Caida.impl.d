lib/topology/caida.ml: Artificial Buffer Engine Filename Fmt Hashtbl List Net Spec String
