(* Routing information bases.

   Adj_in:  per (peer, prefix) routes as received (post-import-policy).
   Loc:     the selected best route per prefix.
   Adj_out: per (peer, prefix) attributes as advertised — consulted to
            suppress duplicate announcements and to know what to withdraw. *)

module Pm = Net.Ipv4.Prefix_map

module Adj_in = struct
  type t = { mutable by_peer : Route.t Pm.t Net.Asn.Map.t }

  let create () = { by_peer = Net.Asn.Map.empty }

  let set t ~peer (route : Route.t) =
    let m = Option.value (Net.Asn.Map.find_opt peer t.by_peer) ~default:Pm.empty in
    t.by_peer <- Net.Asn.Map.add peer (Pm.add (Route.prefix route) route m) t.by_peer

  let remove t ~peer prefix =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> ()
    | Some m -> t.by_peer <- Net.Asn.Map.add peer (Pm.remove prefix m) t.by_peer

  let find t ~peer prefix =
    Option.bind (Net.Asn.Map.find_opt peer t.by_peer) (Pm.find_opt prefix)

  (* All routes for a prefix across peers, in ascending peer order. *)
  let candidates t prefix =
    Net.Asn.Map.fold
      (fun _ m acc -> match Pm.find_opt prefix m with Some r -> r :: acc | None -> acc)
      t.by_peer []
    |> List.rev

  let prefixes_from t ~peer =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> []
    | Some m -> Pm.fold (fun p _ acc -> p :: acc) m [] |> List.rev

  let drop_peer t ~peer =
    let dropped = prefixes_from t ~peer in
    t.by_peer <- Net.Asn.Map.remove peer t.by_peer;
    dropped

  let all_prefixes t =
    Net.Asn.Map.fold
      (fun _ m acc -> Pm.fold (fun p _ acc -> Net.Ipv4.Prefix_set.add p acc) m acc)
      t.by_peer Net.Ipv4.Prefix_set.empty
    |> Net.Ipv4.Prefix_set.elements

  let size t = Net.Asn.Map.fold (fun _ m acc -> acc + Pm.cardinal m) t.by_peer 0
end

module Loc = struct
  type t = { mutable best : Route.t Pm.t }

  let create () = { best = Pm.empty }

  let find t prefix = Pm.find_opt prefix t.best

  let set t (route : Route.t) = t.best <- Pm.add (Route.prefix route) route t.best

  let remove t prefix = t.best <- Pm.remove prefix t.best

  let entries t = Pm.bindings t.best

  let prefixes t = List.map fst (entries t)

  let size t = Pm.cardinal t.best
end

module Adj_out = struct
  type t = { mutable by_peer : Attrs.t Pm.t Net.Asn.Map.t }

  let create () = { by_peer = Net.Asn.Map.empty }

  let set t ~peer prefix attrs =
    let m = Option.value (Net.Asn.Map.find_opt peer t.by_peer) ~default:Pm.empty in
    t.by_peer <- Net.Asn.Map.add peer (Pm.add prefix attrs m) t.by_peer

  let remove t ~peer prefix =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> ()
    | Some m -> t.by_peer <- Net.Asn.Map.add peer (Pm.remove prefix m) t.by_peer

  let find t ~peer prefix =
    Option.bind (Net.Asn.Map.find_opt peer t.by_peer) (Pm.find_opt prefix)

  let advertised t ~peer =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> []
    | Some m -> Pm.bindings m

  let drop_peer t ~peer =
    let dropped = List.map fst (advertised t ~peer) in
    t.by_peer <- Net.Asn.Map.remove peer t.by_peer;
    dropped

  let size t = Net.Asn.Map.fold (fun _ m acc -> acc + Pm.cardinal m) t.by_peer 0
end
