(** iPlane Inter-PoP links dataset support: parser (PoP pairs with
    latencies, collapsed to AS-level links) and a synthetic generator. *)

type parse_error = { line : int; content : string; reason : string }

val pp_parse_error : Format.formatter -> parse_error -> unit

val pop_to_asn : ?pops_per_as:int -> int -> Net.Asn.t
(** Fixed PoP→AS mapping: [asn = 65001 + pop / pops_per_as] (default 4). *)

val parse_string : ?title:string -> ?pops_per_as:int -> string -> (Spec.t, parse_error) result
(** Parse "[pop1 pop2 \[latency_us\]]" lines; PoP-level links collapse onto
    AS-level links keeping the minimum latency. *)

val parse_file : string -> (Spec.t, parse_error) result

val generate_text : ?ases:int -> ?pops_per_as:int -> Engine.Rng.t -> string
(** Synthesize an iPlane-like inter-PoP file (geometric placement,
    distance-proportional latencies). *)

val generate : ?ases:int -> ?pops_per_as:int -> Engine.Rng.t -> Spec.t
(** [generate_text] piped through [parse_string]. *)
