lib/topology/artificial.mli: Net Spec
