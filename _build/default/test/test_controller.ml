(* Cluster_ctl.Controller integration: session loss, intra-cluster
   splits, and re-synchronization, driven through full networks. *)

let asn = Topology.Artificial.asn

let cfg = Framework.Config.fast_test

(* 0,1 legacy; 2,3 SDN members with an intra link (clique has all links) *)
let build ?(seed = 81) () =
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 4) [ asn 2; asn 3 ] in
  let net = Framework.Network.create ~config:cfg ~seed spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  ignore (Framework.Network.settle net);
  (net, plan.Framework.Addressing.origin_prefix (asn 0))

let decision net member prefix =
  Cluster_ctl.Controller.decision
    (Option.get (Framework.Network.controller net))
    ~member prefix

let test_session_loss_reroutes_member () =
  let net, prefix = build () in
  (match decision net (asn 2) prefix with
  | Some d ->
    Alcotest.(check bool) "direct exit to origin first" true
      (d.Cluster_ctl.As_graph.hop = Cluster_ctl.As_graph.Exit { neighbor = asn 0 })
  | None -> Alcotest.fail "member routed");
  (* kill member 2's link to the origin: its session (2,0) dies, the
     controller must reroute member 2 via its other peering or the
     cluster *)
  Framework.Network.fail_link net (asn 2) (asn 0);
  ignore (Framework.Network.settle net);
  (match decision net (asn 2) prefix with
  | Some d ->
    Alcotest.(check bool) "no longer via the dead peering" true
      (d.Cluster_ctl.As_graph.hop <> Cluster_ctl.As_graph.Exit { neighbor = asn 0 })
  | None -> Alcotest.fail "member 2 must still be routed");
  Alcotest.(check bool) "data plane follows" true
    (Framework.Monitor.reachable net ~src:(asn 2) ~dst:(asn 0))

let test_speaker_session_tracks_link () =
  let net, _ = build () in
  let speaker = Option.get (Framework.Network.speaker net) in
  Framework.Network.fail_link net (asn 2) (asn 0);
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "session down with the link" false
    (Cluster_ctl.Speaker.session_established speaker ~member:(asn 2) ~neighbor:(asn 0));
  Framework.Network.recover_link net (asn 2) (asn 0);
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "session back with the link" true
    (Cluster_ctl.Speaker.session_established speaker ~member:(asn 2) ~neighbor:(asn 0))

let test_resync_after_recovery () =
  let net, prefix = build () in
  (* member 3 originates a prefix; legacy 1 learns it over its peering *)
  let plan = Framework.Network.plan net in
  let sdn_prefix = plan.Framework.Addressing.origin_prefix (asn 3) in
  Framework.Network.originate net (asn 3) sdn_prefix;
  ignore (Framework.Network.settle net);
  let r1 = Option.get (Framework.Network.router net (asn 1)) in
  Alcotest.(check bool) "legacy learned before" true (Bgp.Router.best r1 sdn_prefix <> None);
  (* sever ALL of legacy 1's links except to the collector, then recover:
     the full-table sync on re-establishment must restore everything *)
  List.iter (fun n -> Framework.Network.fail_link net (asn 1) n) [ asn 0; asn 2; asn 3 ];
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "flushed while isolated" true (Bgp.Router.best r1 sdn_prefix = None);
  List.iter (fun n -> Framework.Network.recover_link net (asn 1) n) [ asn 0; asn 2; asn 3 ];
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "cluster route resynced" true (Bgp.Router.best r1 sdn_prefix <> None);
  Alcotest.(check bool) "legacy route resynced" true (Bgp.Router.best r1 prefix <> None)

let test_intra_split_changes_subclusters () =
  let net, _ = build () in
  let ctrl = Option.get (Framework.Network.controller net) in
  let components () =
    List.length (Net.Graph.components (Cluster_ctl.Controller.switch_graph ctrl))
  in
  Alcotest.(check int) "one sub-cluster" 1 (components ());
  Framework.Network.fail_link net (asn 2) (asn 3);
  ignore (Framework.Network.settle net);
  Alcotest.(check int) "split into two" 2 (components ());
  Framework.Network.recover_link net (asn 2) (asn 3);
  ignore (Framework.Network.settle net);
  Alcotest.(check int) "rejoined" 1 (components ())

let test_recompute_coalescing () =
  let net, _ = build ~seed:83 () in
  let ctrl = Option.get (Framework.Network.controller net) in
  let batches, marks = Cluster_ctl.Controller.recompute_info ctrl in
  Alcotest.(check bool) "batching coalesces input" true (marks >= batches);
  Alcotest.(check bool) "recomputed at least once" true (batches > 0)

let suite =
  [
    Alcotest.test_case "session loss reroutes member" `Quick test_session_loss_reroutes_member;
    Alcotest.test_case "speaker session tracks link" `Quick test_speaker_session_tracks_link;
    Alcotest.test_case "resync after recovery" `Quick test_resync_after_recovery;
    Alcotest.test_case "intra split changes sub-clusters" `Quick
      test_intra_split_changes_subclusters;
    Alcotest.test_case "recompute coalescing" `Quick test_recompute_coalescing;
  ]
