lib/engine/heap.mli:
