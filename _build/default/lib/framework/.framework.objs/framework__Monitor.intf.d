lib/framework/monitor.mli: Engine Format Net Network
