lib/bgp/community.mli: Format Set
