(* BGP keepalive/hold liveness and quiet-period convergence detection. *)

open Engine

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let asn = Net.Asn.of_int

let keepalive_config =
  {
    (Bgp.Config.no_jitter
       { Bgp.Config.default with Bgp.Config.mrai = Time.sec 1;
         proc_delay_min = Time.ms 1; proc_delay_max = Time.ms 1 })
    with
    Bgp.Config.keepalives =
      Some { Bgp.Config.interval = Time.sec 5; hold_time = Time.sec 15 };
  }

(* A blockable two-router harness: messages can be silently discarded to
   model a gray failure the link layer never reports. *)
type env = {
  sim : Sim.t;
  a : Bgp.Router.t;
  b : Bgp.Router.t;
  blocked : bool ref;
}

let setup () =
  let sim = Sim.create ~seed:4 () in
  let blocked = ref false in
  let handlers : (int, from:int -> Bgp.Message.t -> unit) Hashtbl.t = Hashtbl.create 4 in
  let make n =
    let send ~dst msg =
      if !blocked then true (* silently dropped on the wire *)
      else
        match Hashtbl.find_opt handlers dst with
        | None -> false
        | Some handler ->
          ignore (Sim.schedule_after sim (Time.ms 1) (fun () -> handler ~from:n msg));
          true
    in
    let r =
      Bgp.Router.create ~sim ~asn:(asn n) ~node_id:n
        ~router_id:(Net.Ipv4.addr_of_octets 10 0 (n mod 256) 1)
        ~config:keepalive_config ~send ()
    in
    Hashtbl.replace handlers n (fun ~from msg -> Bgp.Router.handle_message r ~from msg);
    r
  in
  let a = make 65001 and b = make 65002 in
  Bgp.Router.add_peer a ~peer_asn:(asn 65002) ~peer_node:65002
    ~policy:(Bgp.Policy.make Bgp.Policy.Unrestricted);
  Bgp.Router.add_peer b ~peer_asn:(asn 65001) ~peer_node:65001
    ~policy:(Bgp.Policy.make Bgp.Policy.Unrestricted);
  Bgp.Router.start a;
  Bgp.Router.start b;
  { sim; a; b; blocked }

let run_until env t = ignore (Sim.run ~until:t env.sim)

let test_keepalives_maintain_session () =
  let env = setup () in
  run_until env (Time.sec 300);
  Alcotest.(check bool) "still established after 5 min" true
    (Bgp.Router.peer_established env.a (asn 65002));
  (* ~one keepalive per 5 s each way *)
  Alcotest.(check bool) "keepalives flowed" true
    ((Bgp.Router.stats env.a).Bgp.Router.msgs_out > 50)

let test_silent_failure_detected () =
  let env = setup () in
  run_until env (Time.sec 20);
  Alcotest.(check bool) "established" true (Bgp.Router.peer_established env.a (asn 65002));
  env.blocked := true;
  (* hold time is 15 s: the session must die within ~16 s of silence *)
  run_until env (Time.sec 40);
  Alcotest.(check bool) "a detected the gray failure" false
    (Bgp.Router.peer_established env.a (asn 65002));
  Alcotest.(check bool) "b detected it too" false
    (Bgp.Router.peer_established env.b (asn 65001))

let test_routes_flushed_on_hold_expiry () =
  let env = setup () in
  run_until env (Time.sec 10);
  Bgp.Router.originate env.a (p "100.64.0.0/24");
  run_until env (Time.sec 20);
  Alcotest.(check bool) "b learned" true (Bgp.Router.best env.b (p "100.64.0.0/24") <> None);
  env.blocked := true;
  run_until env (Time.sec 60);
  Alcotest.(check bool) "b flushed on hold expiry" true
    (Bgp.Router.best env.b (p "100.64.0.0/24") = None)

(* Quiet-period detection at the framework level, with keepalives keeping
   the event queue permanently non-empty. *)
let test_wait_quiet_with_keepalives () =
  let config =
    {
      Framework.Config.fast_test with
      Framework.Config.bgp =
        {
          Framework.Config.fast_test.Framework.Config.bgp with
          Bgp.Config.keepalives =
            Some { Bgp.Config.interval = Time.sec 10; hold_time = Time.sec 30 };
        };
    }
  in
  let net =
    Framework.Network.create ~config ~seed:6 (Topology.Artificial.clique 3)
  in
  let watcher = Framework.Convergence.attach net in
  Framework.Network.start net;
  let origin = Topology.Artificial.asn 0 in
  let plan = Framework.Network.plan net in
  Framework.Network.originate net origin (plan.Framework.Addressing.origin_prefix origin);
  (match Framework.Convergence.wait_quiet ~quiet:(Time.sec 5) watcher with
  | `Quiet at -> Alcotest.(check bool) "quiet reached" true Time.(at > Time.zero)
  | `Timeout _ -> Alcotest.fail "must go quiet");
  (* routes are in place even though the queue never drained *)
  let r1 = Option.get (Framework.Network.router net (Topology.Artificial.asn 1)) in
  Alcotest.(check bool) "route present" true
    (Bgp.Router.best r1 (plan.Framework.Addressing.origin_prefix origin) <> None)

let suite =
  [
    Alcotest.test_case "keepalives maintain session" `Quick test_keepalives_maintain_session;
    Alcotest.test_case "silent failure detected" `Quick test_silent_failure_detected;
    Alcotest.test_case "routes flushed on hold expiry" `Quick test_routes_flushed_on_hold_expiry;
    Alcotest.test_case "wait_quiet with keepalives" `Quick test_wait_quiet_with_keepalives;
  ]
