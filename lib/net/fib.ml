(* Longest-prefix-match forwarding table, as a binary trie on address bits.
   Generic in the entry type: legacy routers store next-hop AS decisions,
   SDN switches store flow actions.  Backed by [Ipv4.Prefix_trie]. *)

type 'a t = 'a Ipv4.Prefix_trie.t

let create () = Ipv4.Prefix_trie.create ()

let size = Ipv4.Prefix_trie.size

let insert t prefix value = Ipv4.Prefix_trie.set prefix value t

let find t prefix = Ipv4.Prefix_trie.find prefix t

let remove t prefix = Ipv4.Prefix_trie.remove prefix t

let lookup t addr = Ipv4.Prefix_trie.lookup addr t

let lookup_value t addr = Ipv4.Prefix_trie.lookup_value addr t

let lookup_exn t addr = Ipv4.Prefix_trie.lookup_value_exn addr t

let lookup_bits t ~default bits = Ipv4.Prefix_trie.lookup_bits ~default bits t

let entries t = Ipv4.Prefix_trie.entries t

let clear = Ipv4.Prefix_trie.clear

let iter t f = Ipv4.Prefix_trie.iter f t
