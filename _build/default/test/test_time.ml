(* Engine.Time: instants, spans, conversions. *)

open Engine

let check_time = Alcotest.testable Time.pp Time.equal

let test_constructors () =
  Alcotest.(check int) "us" 5 (Time.to_us (Time.us 5));
  Alcotest.(check int) "ms" 5_000 (Time.to_us (Time.ms 5));
  Alcotest.(check int) "sec" 5_000_000 (Time.to_us (Time.sec 5));
  Alcotest.check check_time "of_sec_f" (Time.sec 2) (Time.of_sec_f 2.0)

let test_arithmetic () =
  let t = Time.add Time.zero (Time.sec 3) in
  Alcotest.check check_time "add" (Time.sec 3) t;
  Alcotest.check check_time "diff" (Time.sec 2) (Time.diff (Time.sec 5) (Time.sec 3));
  Alcotest.check check_time "span_add" (Time.ms 1500)
    (Time.span_add (Time.sec 1) (Time.ms 500))

let test_comparisons () =
  Alcotest.(check bool) "lt" true Time.(Time.ms 1 < Time.ms 2);
  Alcotest.(check bool) "le refl" true Time.(Time.ms 1 <= Time.ms 1);
  Alcotest.(check bool) "gt" true Time.(Time.ms 3 > Time.ms 2);
  Alcotest.(check bool) "ge" true Time.(Time.ms 3 >= Time.ms 3);
  Alcotest.check check_time "min" (Time.ms 1) (Time.min (Time.ms 1) (Time.ms 2));
  Alcotest.check check_time "max" (Time.ms 2) (Time.max (Time.ms 1) (Time.ms 2))

let test_scale () =
  Alcotest.check check_time "scale 0.5" (Time.ms 500) (Time.span_scale (Time.sec 1) 0.5);
  Alcotest.check check_time "scale 2.0" (Time.sec 2) (Time.span_scale (Time.sec 1) 2.0)

let test_conversions () =
  Alcotest.(check (float 1e-9)) "to_sec_f" 1.5 (Time.to_sec_f (Time.ms 1500));
  Alcotest.(check (float 1e-9)) "to_ms_f" 1500.0 (Time.to_ms_f (Time.ms 1500));
  Alcotest.(check string) "to_string" "1.500s" (Time.to_string (Time.ms 1500))

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "span scaling" `Quick test_scale;
    Alcotest.test_case "conversions" `Quick test_conversions;
  ]
