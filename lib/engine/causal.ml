(* Deterministic causal span tracing.  See causal.mli for the contract.

   The store is either a fixed ring (span id [i] lives in slot
   [i mod capacity]; a slot is valid iff its occupant's id is within the
   newest [capacity] ids) or a growable array indexed directly by id.
   Ids are dense sequence numbers, so no RNG draw happens per span — the
   only randomness is the run's trace id, minted once at [create] from a
   dedicated stream so the sim root RNG's draw order is untouched. *)

type mode = Disabled | Ring of int | Full

type span = {
  id : int;
  parent : int;
  category : string;
  node : string;
  label : string;
  queued_at : Time.t;
  mutable fired_at : Time.t;
  mutable closed : bool;
}

let dummy =
  {
    id = -1;
    parent = -1;
    category = "";
    node = "";
    label = "";
    queued_at = Time.zero;
    fired_at = Time.zero;
    closed = false;
  }

type t = {
  mode : mode;
  trace_id : int;
  capacity : int; (* ring slots; 0 when Disabled or Full *)
  mutable arr : span array;
  mutable next_id : int; (* = total spans ever opened *)
  mutable current : int; (* span of the event now executing, -1 at top *)
}

(* The trace id comes from a stream keyed off the seed xor "caus" so it
   is stable per seed yet independent of every other subsystem stream. *)
let mint_trace_id seed =
  let rng = Rng.create (seed lxor 0x6361_7573) in
  Int64.to_int (Rng.next_int64 rng) land 0x3FFF_FFFF_FFFF

let create ?(mode = Disabled) ~seed () =
  let capacity = match mode with Ring n -> Stdlib.max 1 n | _ -> 0 in
  let arr =
    match mode with
    | Disabled -> [||]
    | Ring _ -> Array.make capacity dummy
    | Full -> Array.make 1024 dummy
  in
  { mode; trace_id = mint_trace_id seed; capacity; arr; next_id = 0; current = -1 }

let mode t = t.mode

let enabled t = t.mode <> Disabled

let trace_id t = t.trace_id

let total t = t.next_id

let stored t =
  match t.mode with
  | Disabled -> 0
  | Ring _ -> Stdlib.min t.next_id t.capacity
  | Full -> t.next_id

let slot t id = match t.mode with Ring _ -> id mod t.capacity | _ -> id

let find t id =
  if id < 0 || id >= t.next_id then None
  else
    match t.mode with
    | Disabled -> None
    | Full -> Some t.arr.(id)
    | Ring _ -> if id < t.next_id - t.capacity then None else Some t.arr.(slot t id)

let spans t =
  let n = stored t in
  let first = t.next_id - n in
  List.init n (fun i -> t.arr.(slot t (first + i)))

let find_last t pred =
  let n = stored t in
  let first = t.next_id - n in
  let rec scan i =
    if i < first then None
    else
      let s = t.arr.(slot t i) in
      if pred s then Some s else scan (i - 1)
  in
  scan (t.next_id - 1)

let grow_if_needed t =
  if t.mode = Full && t.next_id >= Array.length t.arr then begin
    let bigger = Array.make (2 * Array.length t.arr) dummy in
    Array.blit t.arr 0 bigger 0 (Array.length t.arr);
    t.arr <- bigger
  end

let open_span t ~parent ~category ~node ~label ~queued_at ~fired_at ~closed =
  grow_if_needed t;
  let id = t.next_id in
  let s = { id; parent; category; node; label; queued_at; fired_at; closed } in
  t.arr.(slot t id) <- s;
  t.next_id <- id + 1;
  id

let on_schedule t ~category ~queued_at =
  if t.mode = Disabled then -1
  else
    open_span t ~parent:t.current ~category ~node:"" ~label:"" ~queued_at
      ~fired_at:queued_at ~closed:false

let on_execute t id ~fired_at =
  if id >= 0 then begin
    (match find t id with
    | Some s ->
        s.fired_at <- fired_at;
        s.closed <- true
    | None -> ());
    (* Even an evicted span remains the causal parent of whatever its
       action schedules: children record the id regardless. *)
    t.current <- id
  end

let current t = t.current

let clear_current t = t.current <- -1

let annotate t ~category ?(node = "") ?(label = "") ~at () =
  if t.mode <> Disabled then
    ignore
      (open_span t ~parent:t.current ~category ~node ~label ~queued_at:at
         ~fired_at:at ~closed:true)

let with_span t ~category ?(node = "") ?(label = "") ~at f =
  if t.mode = Disabled then f ()
  else begin
    let id =
      open_span t ~parent:t.current ~category ~node ~label ~queued_at:at
        ~fired_at:at ~closed:true
    in
    let saved = t.current in
    t.current <- id;
    Fun.protect ~finally:(fun () -> t.current <- saved) f
  end

(* Critical path *)

type bucket =
  | Propagation
  | Mrai_hold
  | Session_backoff
  | Recompute
  | Flow_install
  | Mailbox
  | Other

let bucket_of_category = function
  | "net.deliver" | "link" | "data" -> Propagation
  | "bgp.mrai" -> Mrai_hold
  | "bgp.liveness" | "bgp.reconnect" | "bgp.damping" | "speaker.liveness"
  | "sdn.liveness" ->
      Session_backoff
  | "ctrl.recompute" | "ctrl.update" | "controller" -> Recompute
  | "flow.install" | "flow.remove" | "sdn.timeout" | "switch" -> Flow_install
  | "node" | "node.deliver" | "bgp.process" -> Mailbox
  | _ -> Other

let bucket_to_string = function
  | Propagation -> "propagation"
  | Mrai_hold -> "mrai_hold"
  | Session_backoff -> "session_backoff"
  | Recompute -> "recompute"
  | Flow_install -> "flow_install"
  | Mailbox -> "mailbox"
  | Other -> "other"

let bucket_rank = function
  | Propagation -> 0
  | Mrai_hold -> 1
  | Session_backoff -> 2
  | Recompute -> 3
  | Flow_install -> 4
  | Mailbox -> 5
  | Other -> 6

let all_buckets =
  [ Propagation; Mrai_hold; Session_backoff; Recompute; Flow_install; Mailbox; Other ]

let path_to_root t leaf =
  let rec up acc s =
    if s.parent < 0 then s :: acc
    else
      match find t s.parent with
      | Some p -> up (s :: acc) p
      | None -> s :: acc (* ancestor evicted from the ring *)
  in
  up [] leaf

type attribution_row = { bucket : bucket; seconds : float; hops : int }

type attribution = {
  rows : attribution_row list;
  total_seconds : float;
  depth : int;
}

let attribute t leaf =
  let path = path_to_root t leaf in
  let head = List.hd path in
  let total_seconds = Time.to_sec_f (Time.diff leaf.fired_at head.queued_at) in
  let secs = Array.make 7 0.0 and hops = Array.make 7 0 in
  List.iter
    (fun s ->
      let i = bucket_rank (bucket_of_category s.category) in
      secs.(i) <- secs.(i) +. Time.to_sec_f (Time.diff s.fired_at s.queued_at);
      hops.(i) <- hops.(i) + 1)
    path;
  let rows =
    List.filter_map
      (fun b ->
        let i = bucket_rank b in
        if hops.(i) = 0 then None
        else Some { bucket = b; seconds = secs.(i); hops = hops.(i) })
      all_buckets
  in
  let rows =
    List.stable_sort
      (fun a b ->
        match Stdlib.compare b.seconds a.seconds with
        | 0 -> Stdlib.compare (bucket_rank a.bucket) (bucket_rank b.bucket)
        | c -> c)
      rows
  in
  { rows; total_seconds; depth = List.length path }

let is_dataplane_write s =
  match s.category with
  | "fib.write" | "flow.install" | "flow.remove" -> true
  | _ -> false

let convergence_leaf ?label t =
  find_last t (fun s ->
      is_dataplane_write s
      && match label with None -> true | Some l -> String.equal s.label l)

let pp_attribution ppf a =
  Format.fprintf ppf "critical path: depth %d, total %.6fs@," a.depth
    a.total_seconds;
  List.iter
    (fun r ->
      let pct =
        if a.total_seconds > 0.0 then 100.0 *. r.seconds /. a.total_seconds
        else 0.0
      in
      Format.fprintf ppf "  %-16s %12.6fs  %5.1f%%  %d hop%s@,"
        (bucket_to_string r.bucket) r.seconds pct r.hops
        (if r.hops = 1 then "" else "s"))
    a.rows

(* Exporters.  Both render only closed spans (a span left open belongs
   to a cancelled event) so the output is a pure deterministic function
   of the retained store. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Thread lanes: one per emitting node, numbered by first appearance so
   the mapping is deterministic.  Anonymous engine events share lane 0. *)
let lane_table spans_list =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Hashtbl.add tbl "" 0;
  order := [ "" ];
  List.iter
    (fun s ->
      if not (Hashtbl.mem tbl s.node) then begin
        Hashtbl.add tbl s.node (Hashtbl.length tbl);
        order := s.node :: !order
      end)
    spans_list;
  (tbl, List.rev !order)

let to_chrome t =
  let closed = List.filter (fun s -> s.closed) (spans t) in
  let lanes, order = lane_table closed in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ','
  in
  List.iter
    (fun node ->
      sep ();
      let name = if node = "" then "engine" else node in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           (Hashtbl.find lanes node) (json_escape name)))
    order;
  List.iter
    (fun s ->
      sep ();
      let ts = Time.to_us s.queued_at in
      let dur = Time.to_us s.fired_at - ts in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d,\"args\":{\"id\":%d,\"parent\":%d,\"label\":\"%s\",\"trace\":%d}}"
           (json_escape s.category) (json_escape s.category) ts dur
           (Hashtbl.find lanes s.node) s.id s.parent (json_escape s.label)
           t.trace_id))
    closed;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      if s.closed then
        Buffer.add_string buf
          (Printf.sprintf
             "{\"trace\":%d,\"span\":%d,\"parent\":%d,\"category\":\"%s\",\"node\":\"%s\",\"label\":\"%s\",\"queued_us\":%d,\"fired_us\":%d}\n"
             t.trace_id s.id s.parent (json_escape s.category)
             (json_escape s.node) (json_escape s.label)
             (Time.to_us s.queued_at) (Time.to_us s.fired_at)))
    (spans t);
  Buffer.contents buf

let render_line s =
  let wait = Time.to_us s.fired_at - Time.to_us s.queued_at in
  Printf.sprintf "%012d #%d<-%d %s%s%s (wait %dus)" (Time.to_us s.fired_at)
    s.id s.parent s.category
    (if s.node = "" then "" else " " ^ s.node)
    (if s.label = "" then "" else " [" ^ s.label ^ "]")
    wait

let flight_lines t =
  List.filter_map (fun s -> if s.closed then Some (render_line s) else None) (spans t)
