test/test_as_graph.ml: Alcotest As_graph Bgp Cluster_ctl Engine Fmt Fun List Net QCheck QCheck_alcotest String
