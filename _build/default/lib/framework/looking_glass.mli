(** Looking glass: human-readable control- and data-plane state dumps. *)

val router_rib : Bgp.Router.t -> string
(** "show ip bgp": the Loc-RIB with best and alternate paths. *)

val switch_flows : Sdn.Switch.t -> string

val controller_state : Cluster_ctl.Controller.t -> string
(** Members, sub-clusters, per-prefix decisions, counters. *)

val network_state : Network.t -> string
(** Every router, switch, the controller and the collector. *)
