lib/bgp/policy.mli: Attrs Community Format Net
