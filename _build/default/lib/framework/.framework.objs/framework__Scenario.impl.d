lib/framework/scenario.ml: Addressing Buffer Engine Experiment Filename Fmt List Net Network String
