(* The union message type carried by the emulated fabric: BGP wire
   messages, OpenFlow control traffic, and data-plane packets. *)

type t =
  | Bgp of Bgp.Message.t
  | Openflow of Sdn.Openflow.t
  | Data of Net.Packet.t

let pp ppf = function
  | Bgp m -> Fmt.pf ppf "bgp:%a" Bgp.Message.pp m
  | Openflow m -> Fmt.pf ppf "of:%a" Sdn.Openflow.pp m
  | Data p -> Fmt.pf ppf "data:%a" Net.Packet.pp p

(* Cross-shard receive path: rebuild any domain-local hash-consed state
   (BGP path attributes) on the receiving domain.  Data packets and
   attr-free control messages pass through untouched. *)
let rehash = function
  | Bgp m -> Bgp (Bgp.Message.rehash m)
  | Openflow (Sdn.Openflow.Bgp_relay r) ->
    Openflow (Sdn.Openflow.Bgp_relay { r with payload = Bgp.Message.rehash r.payload })
  | (Openflow _ | Data _) as p -> p
