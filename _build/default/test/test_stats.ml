(* Engine.Stats: descriptive statistics and the linear-fit helpers used by
   the Fig. 2 trend check. *)

open Engine

let feq = Alcotest.(check (float 1e-9))

let test_mean_stddev () =
  feq "mean" 3.0 (Stats.mean [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  feq "stddev" (sqrt 2.5) (Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  Alcotest.(check (float 0.0)) "stddev singleton" 0.0 (Stats.stddev [ 42.0 ]);
  Alcotest.(check bool) "mean empty is nan" true (Float.is_nan (Stats.mean []))

let test_quantiles () =
  let l = [ 1.0; 2.0; 3.0; 4.0 ] in
  feq "median interpolated" 2.5 (Stats.median l);
  feq "q1" 1.75 (Stats.quantile l 0.25);
  feq "q3" 3.25 (Stats.quantile l 0.75);
  feq "min" 1.0 (Stats.quantile l 0.0);
  feq "max" 4.0 (Stats.quantile l 1.0);
  feq "median odd" 2.0 (Stats.median [ 1.0; 2.0; 3.0 ])

let test_boxplot () =
  let b = Stats.boxplot [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check int) "n" 5 b.Stats.n;
  feq "min" 1.0 b.Stats.minimum;
  feq "median" 3.0 b.Stats.median;
  feq "max" 5.0 b.Stats.maximum;
  feq "mean" 3.0 b.Stats.mean;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.boxplot: empty sample") (fun () ->
      ignore (Stats.boxplot []))

let test_linear_fit () =
  (* y = 2 + 3x exactly *)
  let pts = [ (0.0, 2.0); (1.0, 5.0); (2.0, 8.0); (3.0, 11.0) ] in
  let a, b = Stats.linear_fit pts in
  feq "intercept" 2.0 a;
  feq "slope" 3.0 b;
  feq "r2 perfect" 1.0 (Stats.r_squared pts)

let test_linear_fit_noisy () =
  let pts = [ (0.0, 1.9); (1.0, 5.2); (2.0, 7.8); (3.0, 11.1) ] in
  let _, b = Stats.linear_fit pts in
  Alcotest.(check bool) "slope near 3" true (Float.abs (b -. 3.0) < 0.3);
  Alcotest.(check bool) "r2 high" true (Stats.r_squared pts > 0.99)

let test_running () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 2.0; 4.0; 6.0; 8.0 ];
  Alcotest.(check int) "count" 4 (Stats.Running.count r);
  feq "mean" 5.0 (Stats.Running.mean r);
  feq "min" 2.0 (Stats.Running.minimum r);
  feq "max" 8.0 (Stats.Running.maximum r);
  feq "variance" (20.0 /. 3.0) (Stats.Running.variance r)

let prop_boxplot_ordered =
  QCheck.Test.make ~name:"boxplot quartiles are ordered" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun l ->
      let b = Stats.boxplot l in
      b.Stats.minimum <= b.Stats.q1
      && b.Stats.q1 <= b.Stats.median
      && b.Stats.median <= b.Stats.q3
      && b.Stats.q3 <= b.Stats.maximum)

let prop_running_matches_batch =
  QCheck.Test.make ~name:"running mean matches batch mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
    (fun l ->
      let r = Stats.Running.create () in
      List.iter (Stats.Running.add r) l;
      Float.abs (Stats.Running.mean r -. Stats.mean l) < 1e-6)

let suite =
  [
    Alcotest.test_case "mean and stddev" `Quick test_mean_stddev;
    Alcotest.test_case "quantiles" `Quick test_quantiles;
    Alcotest.test_case "boxplot" `Quick test_boxplot;
    Alcotest.test_case "linear fit exact" `Quick test_linear_fit;
    Alcotest.test_case "linear fit noisy" `Quick test_linear_fit_noisy;
    Alcotest.test_case "running stats" `Quick test_running;
    QCheck_alcotest.to_alcotest prop_boxplot_ordered;
    QCheck_alcotest.to_alcotest prop_running_matches_batch;
  ]
