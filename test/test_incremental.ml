(* Differential tests for the hot-path overhaul: every fast path — the
   arena-reused As_graph pipeline, the controller's fingerprint-based
   recompute skipping, and the straight-line decision comparator — must
   be observationally identical to its from-scratch reference. *)

open Cluster_ctl

let asn = Net.Asn.of_int

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

(* --- As_graph decision equality ----------------------------------------- *)

let hop_equal (a : As_graph.hop) (b : As_graph.hop) =
  match (a, b) with
  | As_graph.Deliver_local, As_graph.Deliver_local -> true
  | As_graph.Exit { neighbor = x }, As_graph.Exit { neighbor = y } -> Net.Asn.equal x y
  | As_graph.Intra { next_member = x }, As_graph.Intra { next_member = y } ->
    Net.Asn.equal x y
  | ( As_graph.Bridge { via_neighbor = n1; to_member = m1 },
      As_graph.Bridge { via_neighbor = n2; to_member = m2 } ) ->
    Net.Asn.equal n1 n2 && Net.Asn.equal m1 m2
  | _ -> false

let decision_equal (a : As_graph.decision) (b : As_graph.decision) =
  Net.Asn.equal a.As_graph.member b.As_graph.member
  && hop_equal a.As_graph.hop b.As_graph.hop
  && List.compare_lengths a.As_graph.as_path b.As_graph.as_path = 0
  && List.for_all2 Net.Asn.equal a.As_graph.as_path b.As_graph.as_path
  && Float.equal a.As_graph.distance b.As_graph.distance
  && a.As_graph.provenance = b.As_graph.provenance

let maps_equal = Net.Asn.Map.equal decision_equal

let check_maps msg expected actual =
  Alcotest.(check bool) msg true (maps_equal expected actual)

(* --- Arena-reused compute ≡ fresh compute ------------------------------- *)

(* Random sub-cluster instances: member graphs with random connectivity,
   exit routes with random paths (sometimes re-entering the cluster, to
   exercise the bridge/loop-avoidance logic), random relationships and
   originators. *)
let random_instance st =
  let nmembers = 1 + Random.State.int st 5 in
  let member_ids = List.init nmembers (fun i -> 10 + i) in
  let members = Net.Asn.Set.of_list (List.map asn member_ids) in
  let g = Net.Graph.create () in
  List.iter (Net.Graph.add_node g) member_ids;
  List.iter
    (fun u ->
      List.iter
        (fun v -> if u < v && Random.State.int st 3 > 0 then Net.Graph.add_edge g u v)
        member_ids)
    member_ids;
  let rels =
    [| Bgp.Policy.Customer; Bgp.Policy.Provider; Bgp.Policy.Peer; Bgp.Policy.Unrestricted |]
  in
  let routes =
    List.init
      (Random.State.int st 9)
      (fun _ ->
        let member = asn (10 + Random.State.int st nmembers) in
        let neighbor = asn (1 + Random.State.int st 5) in
        let hops = 1 + Random.State.int st 3 in
        let path = List.init hops (fun _ -> asn (1 + Random.State.int st 8)) in
        (* occasionally route back through a member: re-entry paths *)
        let path =
          if Random.State.int st 4 = 0 then
            path @ [ asn (10 + Random.State.int st nmembers); asn (1 + Random.State.int st 8) ]
          else path
        in
        let attrs =
          Bgp.Attrs.make ~as_path:path
            ~local_pref:(90 + (10 * Random.State.int st 3))
            ~next_hop:nh ()
        in
        { As_graph.member; neighbor; attrs; rel = rels.(Random.State.int st 4) })
  in
  let originators =
    Net.Asn.Set.of_list
      (List.filter_map
         (fun m -> if Random.State.int st 8 = 0 then Some (asn m) else None)
         member_ids)
  in
  (members, g, routes, originators)

let test_arena_matches_fresh () =
  let st = Random.State.make [| 421 |] in
  (* one arena across every instance: stale state from a previous graph,
     route set or member set must never leak into the next result *)
  let arena = As_graph.create_arena () in
  for _ = 1 to 80 do
    let members, g, routes, originators = random_instance st in
    let fresh () = As_graph.compute ~members ~switch_graph:g ~routes ~originators () in
    let reused () =
      As_graph.compute ~arena ~members ~switch_graph:g ~routes ~originators ()
    in
    check_maps "arena = fresh" (fresh ()) (reused ());
    (* same graph again: the sub-cluster cache-hit path *)
    check_maps "arena cache hit = fresh" (fresh ()) (reused ());
    (* mutate the graph (version bump) and compare both ways again *)
    (match Net.Asn.Set.elements members with
    | a :: b :: _ ->
      let u = Net.Asn.to_int a and v = Net.Asn.to_int b in
      if Net.Graph.mem_edge g u v then Net.Graph.remove_edge g u v
      else Net.Graph.add_edge g u v;
      check_maps "arena after graph edit = fresh" (fresh ()) (reused ())
    | _ -> ())
  done

(* --- Controller incremental state ≡ from-scratch compute ----------------- *)

let art = Topology.Artificial.asn

let cfg = Framework.Config.fast_test

(* 4-AS clique: 0,1 legacy; 2,3 centralized.  Origin prefixes from a
   legacy AS (no originators) and from a member (originator set). *)
let build_net () =
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 4) [ art 2; art 3 ] in
  let net = Framework.Network.create ~config:cfg ~seed:91 spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  let plan = Framework.Network.plan net in
  let legacy_prefix = plan.Framework.Addressing.origin_prefix (art 0) in
  let member_prefix = plan.Framework.Addressing.origin_prefix (art 3) in
  Framework.Network.originate net (art 0) legacy_prefix;
  Framework.Network.originate net (art 3) member_prefix;
  ignore (Framework.Network.settle net);
  (net, legacy_prefix, member_prefix)

let scratch_compute ctrl ~originators prefix =
  As_graph.compute
    ~members:(Net.Asn.Set.of_list (Controller.members ctrl))
    ~switch_graph:(Controller.switch_graph ctrl)
    ~routes:(Controller.rib_routes ctrl prefix)
    ~originators ()

let check_controller_matches ctrl ~legacy_prefix ~member_prefix msg =
  check_maps
    (msg ^ ": legacy prefix")
    (scratch_compute ctrl ~originators:Net.Asn.Set.empty legacy_prefix)
    (Controller.decisions_for ctrl legacy_prefix);
  check_maps
    (msg ^ ": member prefix")
    (scratch_compute ctrl ~originators:(Net.Asn.Set.singleton (art 3)) member_prefix)
    (Controller.decisions_for ctrl member_prefix)

let test_controller_matches_scratch () =
  let net, legacy_prefix, member_prefix = build_net () in
  let ctrl = Option.get (Framework.Network.controller net) in
  check_controller_matches ctrl ~legacy_prefix ~member_prefix "after settle";
  (* session loss: member 2 loses its peering toward the origin *)
  Framework.Network.fail_link net (art 2) (art 0);
  ignore (Framework.Network.settle net);
  check_controller_matches ctrl ~legacy_prefix ~member_prefix "after session loss";
  (* intra-cluster split: the switch graph itself changes *)
  Framework.Network.fail_link net (art 2) (art 3);
  ignore (Framework.Network.settle net);
  check_controller_matches ctrl ~legacy_prefix ~member_prefix "after intra split";
  (* full recovery *)
  Framework.Network.recover_link net (art 2) (art 0);
  Framework.Network.recover_link net (art 2) (art 3);
  ignore (Framework.Network.settle net);
  check_controller_matches ctrl ~legacy_prefix ~member_prefix "after recovery"

(* --- Recompute skipping: redundant events are elided, not mis-applied --- *)

let test_redundant_event_skips () =
  let net, legacy_prefix, member_prefix = build_net () in
  let ctrl = Option.get (Framework.Network.controller net) in
  let stats = Controller.stats ctrl in
  let before = Controller.decisions_for ctrl legacy_prefix in
  let recomputed0 = stats.Controller.prefixes_recomputed in
  let skipped0 = stats.Controller.recompute_skipped in
  (* a PORT_STATUS up for an already-up intra link: marks every known
     prefix dirty but changes no input (the graph edit is a no-op, so the
     version is stable) — every recompute must be skipped *)
  Controller.handle_openflow ctrl
    (Sdn.Openflow.Port_status
       { switch_asn = art 2; port = Net.Asn.to_int (art 3); up = true });
  Controller.flush_recompute ctrl;
  let nprefixes = List.length (Controller.known_prefixes ctrl) in
  Alcotest.(check bool) "some prefixes were dirty" true (nprefixes > 0);
  Alcotest.(check int) "all dirty prefixes skipped" (skipped0 + nprefixes)
    stats.Controller.recompute_skipped;
  Alcotest.(check int) "no prefix actually recomputed" recomputed0
    stats.Controller.prefixes_recomputed;
  check_maps "decisions unchanged" before (Controller.decisions_for ctrl legacy_prefix);
  (* a real change must still recompute: drop the member-originated
     prefix's origin *)
  Framework.Network.fail_link net (art 2) (art 3);
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "real change recomputes" true
    (stats.Controller.prefixes_recomputed > recomputed0);
  check_maps "post-change decisions match scratch"
    (scratch_compute ctrl ~originators:(Net.Asn.Set.singleton (art 3)) member_prefix)
    (Controller.decisions_for ctrl member_prefix)

let test_graph_version_noop_add () =
  let g = Net.Graph.create () in
  Net.Graph.add_edge g 1 2;
  let v = Net.Graph.version g in
  Net.Graph.add_edge g 1 2;
  Alcotest.(check int) "redundant add keeps version" v (Net.Graph.version g);
  Net.Graph.add_edge ~w:2.0 g 1 2;
  Alcotest.(check bool) "reweight bumps version" true (Net.Graph.version g > v);
  Alcotest.(check int) "still one edge" 1 (Net.Graph.edge_count g)

(* --- Decision.compare ≡ the reference step-list comparator --------------- *)

(* The pre-overhaul comparator, kept verbatim as the semantic reference:
   a list of lazily evaluated tie-break steps folded until one decides. *)
let reference_compare (a : Bgp.Route.t) (b : Bgp.Route.t) =
  let source_rank r =
    match Bgp.Route.source r with Bgp.Route.Local -> 0 | Bgp.Route.Ebgp _ -> 1
  in
  let neighbor_key r =
    match Bgp.Route.source r with
    | Bgp.Route.Local -> -1
    | Bgp.Route.Ebgp p -> Net.Asn.to_int p
  in
  let steps =
    [
      (fun () ->
        Int.compare (Bgp.Route.attrs b).Bgp.Attrs.local_pref
          (Bgp.Route.attrs a).Bgp.Attrs.local_pref);
      (fun () -> Int.compare (source_rank a) (source_rank b));
      (fun () ->
        Int.compare
          (Bgp.Attrs.path_length (Bgp.Route.attrs a))
          (Bgp.Attrs.path_length (Bgp.Route.attrs b)));
      (fun () ->
        Int.compare
          (Bgp.Attrs.origin_rank (Bgp.Route.attrs a).Bgp.Attrs.origin)
          (Bgp.Attrs.origin_rank (Bgp.Route.attrs b).Bgp.Attrs.origin));
      (fun () ->
        Int.compare (Bgp.Route.attrs a).Bgp.Attrs.med (Bgp.Route.attrs b).Bgp.Attrs.med);
      (fun () -> Int.compare (neighbor_key a) (neighbor_key b));
    ]
  in
  List.fold_left (fun c f -> if c <> 0 then c else f ()) 0 steps

let prefix = Option.get (Net.Ipv4.prefix_of_string "100.64.0.0/24")

let route ~local_pref ~path ~med ~origin ~source =
  let attrs =
    Bgp.Attrs.make ~as_path:(List.map asn path) ~local_pref ~med ~origin ~next_hop:nh ()
  in
  Bgp.Route.make ~prefix ~attrs ~source ~learned_at:Engine.Time.zero

let arb_route =
  let gen =
    QCheck.Gen.(
      let* lp = int_range 90 130 in
      let* len = int_range 0 4 in
      let* path = list_repeat len (int_range 65001 65008) in
      let* med = int_range 0 3 in
      let* origin = oneofl [ Bgp.Attrs.Igp; Bgp.Attrs.Egp; Bgp.Attrs.Incomplete ] in
      let* source =
        frequency
          [ (1, return Bgp.Route.Local);
            (7, map (fun n -> Bgp.Route.Ebgp (asn n)) (int_range 65001 65008)) ]
      in
      return (route ~local_pref:lp ~path ~med ~origin ~source))
  in
  QCheck.make ~print:(fun r -> Fmt.str "%a" Bgp.Route.pp r) gen

let prop_compare_matches_reference =
  QCheck.Test.make ~name:"straight-line compare = reference step list" ~count:1000
    QCheck.(pair arb_route arb_route)
    (fun (a, b) -> Bgp.Decision.compare a b = reference_compare a b)

let suite =
  [
    Alcotest.test_case "arena compute matches fresh compute" `Quick test_arena_matches_fresh;
    Alcotest.test_case "controller matches from-scratch compute" `Quick
      test_controller_matches_scratch;
    Alcotest.test_case "redundant events are skipped" `Quick test_redundant_event_skips;
    Alcotest.test_case "redundant add_edge keeps graph version" `Quick
      test_graph_version_noop_add;
    QCheck_alcotest.to_alcotest prop_compare_matches_reference;
  ]
