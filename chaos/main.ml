(* Chaos driver: the `@chaos-smoke` alias runs the failure drill (crash
   the cluster head mid-run, verify graceful degradation onto the legacy
   fallback, restart, verify resync), and the `@chaos-campaign` alias
   runs a seeded randomized-fault campaign through the invariant oracle.
   Exits non-zero on the first violated assertion.

   Usage:
     main.exe                 # drill with fallback, then without
     main.exe --no-fallback   # blackhole variant only
     main.exe campaign [RUNS] [SEED] [--no-fallback]                  *)

let fail fmt = Fmt.kstr (fun s -> prerr_endline ("chaos: FAIL: " ^ s); exit 1) fmt

let check what ok = if not ok then fail "%s" what

let quiet = Engine.Time.sec 3

let wait_quiet what conv =
  match Framework.Convergence.wait_quiet ~quiet ~max_wait:(Engine.Time.sec 120) conv with
  | `Quiet t -> t
  | `Timeout _ -> fail "%s: control plane never went quiet" what

let hybrid_clique n members =
  let spec = Topology.Artificial.clique n in
  let asns = Topology.Spec.asns spec in
  Topology.Spec.with_sdn spec (List.filteri (fun i _ -> i >= n - members) asns)

let config_for ~fallback =
  if fallback then Framework.Config.failure_test
  else { Framework.Config.failure_test with switch_liveness = None }

(* The head-crash drill.  With [fallback] the member switches detect the
   dead controller via echo liveness and degrade onto a legacy default
   route, so they RETAIN reachability — including to a prefix announced
   while the head is down.  Without it they blackhole unknown traffic
   until the restart (the pre-hardening behavior). *)
let drill ~fallback () =
  let n = 8 and members = 4 in
  let spec = hybrid_clique n members in
  let net = Framework.Network.create ~config:(config_for ~fallback) ~seed:2014 spec in
  let conv = Framework.Convergence.attach net in
  Framework.Network.start net;
  let plan = Framework.Network.plan net in
  let origin = Topology.Artificial.asn 0 in
  let origin2 = Topology.Artificial.asn 1 in
  let member = Topology.Artificial.asn (n - 1) in
  let reach ~src ~dst = Framework.Monitor.reachable net ~src ~dst in
  let originate asn =
    Framework.Network.originate net asn (plan.Framework.Addressing.origin_prefix asn)
  in
  let member_switch () =
    match Framework.Network.switch net member with
    | Some sw -> sw
    | None -> fail "AS%a has no switch" Net.Asn.pp member
  in
  originate origin;
  ignore (wait_quiet "initial convergence" conv);
  check "member reaches the origin after initial convergence"
    (reach ~src:member ~dst:origin);
  (* Kill the cluster head, then keep routing changing while it is down:
     the new announcement converges among the legacy routers, and every
     relay toward the dead head is refused at the fabric. *)
  Framework.Network.crash_controller net;
  originate origin2;
  Framework.Network.run_until net
    (Engine.Time.add (Framework.Network.now net) (Engine.Time.sec 8));
  let fabric = Framework.Network.fabric net in
  check "deliveries to the dead head are dropped as node_down"
    (Net.Netsim.drops fabric Net.Netsim.Node_down > 0);
  if fallback then begin
    check "member switch degraded onto its legacy fallback"
      (Sdn.Switch.fallback_active (member_switch ()));
    check "member keeps reaching the origin while the head is down"
      (reach ~src:member ~dst:origin);
    check "member reaches the route announced DURING the outage (fallback)"
      (reach ~src:member ~dst:origin2)
  end
  else begin
    check "no fallback without switch liveness"
      (not (Sdn.Switch.fallback_active (member_switch ())));
    check "--no-fallback: the mid-outage announcement blackholes at the member"
      (not (reach ~src:member ~dst:origin2))
  end;
  (* Restart: the speaker's NOTIFICATION-then-OPEN resync pulls external
     routes back in, the controller reinstalls flow rules and releases
     the switches from fallback with RESYNC_DONE. *)
  Framework.Network.restart_controller net;
  (* Let the resync handshake begin before asking for quiet —
     [wait_quiet] returns immediately when the pre-restart plane was
     already stable. *)
  Framework.Network.run_until net
    (Engine.Time.add (Framework.Network.now net) (Engine.Time.sec 1));
  ignore (wait_quiet "post-restart reconvergence" conv);
  check "member reaches the origin after the restart" (reach ~src:member ~dst:origin);
  check "member learned the route announced during the outage"
    (reach ~src:member ~dst:origin2);
  check "RESYNC_DONE released the member from fallback"
    (not (Sdn.Switch.fallback_active (member_switch ())));
  (* The post-restart control/data plane must match a run that never
     crashed at all (modulo clocks and counters, which the rendering
     excludes). *)
  let baseline =
    let net' = Framework.Network.create ~config:(config_for ~fallback) ~seed:2014 spec in
    let conv' = Framework.Convergence.attach net' in
    Framework.Network.start net';
    Framework.Network.originate net' origin
      (plan.Framework.Addressing.origin_prefix origin);
    Framework.Network.originate net' origin2
      (plan.Framework.Addressing.origin_prefix origin2);
    ignore (wait_quiet "baseline convergence" conv');
    Framework.Chaos.render_state net'
  in
  check "post-resync state matches a never-crashed run"
    (String.equal (Framework.Chaos.render_state net) baseline);
  if fallback then begin
    (* Run past the flow hard timeout so expiry (and the controller's
       reinstallation) shows up in the export. *)
    Framework.Network.run_until net
      (Engine.Time.add (Framework.Network.now net) (Engine.Time.sec 50));
    let snap =
      Engine.Metrics.snapshot
        (Engine.Sim.metrics (Framework.Network.sim net))
        ~at:(Framework.Network.now net)
    in
    match Engine.Metrics.parse_prometheus (Engine.Metrics.to_prometheus snap) with
    | Error e -> fail "metrics export does not parse: %s" e
    | Ok samples ->
      let has name = List.exists (fun s -> s.Engine.Metrics.p_name = name) samples in
      List.iter
        (fun name -> check (name ^ " exported") (has name))
        [
          "node_lifecycle_transitions_total";
          "net_messages_dropped_total";
          "bgp_session_state";
          "bgp_hold_expirations_total";
          "controller_failovers_total";
          "flow_rules_expired_total";
        ]
  end;
  Fmt.pr "chaos: drill ok (fallback=%b)@." fallback

let campaign ~fallback ~runs ~seed () =
  let report = Framework.Chaos.run_campaign ~fallback ~seed ~runs () in
  print_string (Framework.Chaos.render_report report);
  let violating =
    List.filter
      (fun r -> r.Framework.Chaos.violations <> [] || not r.Framework.Chaos.quiesced)
      report.Framework.Chaos.results
  in
  if violating <> [] then
    fail "%d/%d schedules violated an invariant" (List.length violating) runs;
  Fmt.pr "chaos: campaign ok (%d runs, seed %d)@." runs seed

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let fallback = not (List.mem "--no-fallback" args) in
  match List.filter (fun a -> a <> "--no-fallback") args with
  | "campaign" :: rest ->
    let ints = List.filter_map int_of_string_opt rest in
    let runs = match ints with r :: _ -> r | [] -> 25 in
    let seed = match ints with _ :: s :: _ -> s | _ -> 2014 in
    campaign ~fallback ~runs ~seed ()
  | _ ->
    drill ~fallback ();
    if fallback then drill ~fallback:false ();
    print_endline
      "chaos-smoke: head crash degraded gracefully, resync reconverged, export clean"
