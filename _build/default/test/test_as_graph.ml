(* Cluster_ctl.As_graph: the per-prefix AS topology graph transformation —
   exits, intra-cluster routing, sub-cluster-aware loop avoidance, legacy
   bridges, and the loop-freedom invariant. *)

open Cluster_ctl

let asn = Net.Asn.of_int

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let attrs path = Bgp.Attrs.make ~as_path:(List.map asn path) ~next_hop:nh ()

let route ?(rel = Bgp.Policy.Unrestricted) member neighbor path =
  { As_graph.member = asn member; neighbor = asn neighbor; attrs = attrs path; rel }

let switch_graph edges =
  let g = Net.Graph.create () in
  List.iter (fun (u, v) -> Net.Graph.add_edge g u v) edges;
  g

let members l = Net.Asn.Set.of_list (List.map asn l)

let compute ?(originators = []) ~mem ~edges routes =
  let g = switch_graph edges in
  Net.Asn.Set.iter (fun m -> Net.Graph.add_node g (Net.Asn.to_int m)) (members mem);
  As_graph.compute ~members:(members mem) ~switch_graph:g ~routes
    ~originators:(Net.Asn.Set.of_list (List.map asn originators))
    ()

let decision map m = Net.Asn.Map.find_opt (asn m) map

let path_ints (d : As_graph.decision) = List.map Net.Asn.to_int d.As_graph.as_path

let test_classify () =
  let mem = members [ 10; 11 ] in
  (match As_graph.classify_path mem [ asn 1; asn 2 ] with
  | `External -> ()
  | `Reenters _ -> Alcotest.fail "external path misclassified");
  match As_graph.classify_path mem [ asn 1; asn 11; asn 2 ] with
  | `Reenters (segment, c) ->
    Alcotest.(check (list int)) "segment up to member" [ 1; 11 ]
      (List.map Net.Asn.to_int segment);
    Alcotest.(check int) "member found" 11 (Net.Asn.to_int c)
  | `External -> Alcotest.fail "re-entry missed"

let test_direct_exit () =
  let map = compute ~mem:[ 10 ] ~edges:[] [ route 10 1 [ 1; 2 ] ] in
  match decision map 10 with
  | Some d ->
    Alcotest.(check bool) "exit hop" true
      (d.As_graph.hop = As_graph.Exit { neighbor = asn 1 });
    Alcotest.(check (list int)) "path" [ 1; 2 ] (path_ints d);
    Alcotest.(check (float 0.0)) "distance" 2.0 d.As_graph.distance
  | None -> Alcotest.fail "member must be routed"

let test_best_exit_chosen () =
  let map =
    compute ~mem:[ 10 ] ~edges:[] [ route 10 1 [ 1; 2; 3 ]; route 10 4 [ 4 ] ]
  in
  match decision map 10 with
  | Some d ->
    Alcotest.(check bool) "shorter exit" true
      (d.As_graph.hop = As_graph.Exit { neighbor = asn 4 });
    Alcotest.(check (list int)) "path" [ 4 ] (path_ints d)
  | None -> Alcotest.fail "routed"

let test_intra_cluster_routing () =
  (* 10 -- 11, only 11 has an exit: 10 forwards through the cluster. *)
  let map = compute ~mem:[ 10; 11 ] ~edges:[ (10, 11) ] [ route 11 1 [ 1 ] ] in
  (match decision map 10 with
  | Some d ->
    Alcotest.(check bool) "intra hop" true
      (d.As_graph.hop = As_graph.Intra { next_member = asn 11 });
    Alcotest.(check (list int)) "path through member" [ 11; 1 ] (path_ints d);
    Alcotest.(check (float 0.0)) "distance 2" 2.0 d.As_graph.distance
  | None -> Alcotest.fail "10 must be routed");
  match decision map 11 with
  | Some d -> Alcotest.(check bool) "11 exits" true (d.As_graph.hop = As_graph.Exit { neighbor = asn 1 })
  | None -> Alcotest.fail "11 must be routed"

let test_exit_vs_intra_tradeoff () =
  (* 10's own exit has length 4; via 11 it is 1 (intra) + 1 = 2. *)
  let map =
    compute ~mem:[ 10; 11 ] ~edges:[ (10, 11) ]
      [ route 10 1 [ 1; 2; 3; 4 ]; route 11 5 [ 5 ] ]
  in
  match decision map 10 with
  | Some d ->
    Alcotest.(check bool) "prefers cluster egress via 11" true
      (d.As_graph.hop = As_graph.Intra { next_member = asn 11 })
  | None -> Alcotest.fail "routed"

let test_originator () =
  let map = compute ~originators:[ 10 ] ~mem:[ 10; 11 ] ~edges:[ (10, 11) ] [] in
  (match decision map 10 with
  | Some d ->
    Alcotest.(check bool) "local delivery" true (d.As_graph.hop = As_graph.Deliver_local);
    Alcotest.(check (list int)) "empty path" [] (path_ints d);
    Alcotest.(check bool) "originated provenance" true
      (d.As_graph.provenance = Bgp.Policy.Originated)
  | None -> Alcotest.fail "originator routed");
  match decision map 11 with
  | Some d ->
    Alcotest.(check bool) "neighbor goes intra" true
      (d.As_graph.hop = As_graph.Intra { next_member = asn 10 });
    Alcotest.(check (list int)) "path is the member" [ 10 ] (path_ints d)
  | None -> Alcotest.fail "11 routed"

let test_unreachable_absent () =
  let map = compute ~mem:[ 10; 11 ] ~edges:[] [ route 10 1 [ 1 ] ] in
  Alcotest.(check bool) "10 routed" true (decision map 10 <> None);
  Alcotest.(check bool) "11 unreachable" true (decision map 11 = None)

let test_same_subcluster_reentry_discarded () =
  (* 10 and 11 are in one sub-cluster; a route at 10 whose path re-enters
     via 11 must be dropped (it would be routed by the same controller:
     potential loop the AS path cannot express). *)
  let map = compute ~mem:[ 10; 11 ] ~edges:[ (10, 11) ] [ route 10 1 [ 1; 11; 2 ] ] in
  Alcotest.(check bool) "no decision from poisoned route" true (decision map 10 = None)

let test_bridge_across_subclusters () =
  (* Disjoint sub-clusters {10} and {11}; 10's route crosses the legacy
     world into 11, which has its own exit: allowed as a bridge. *)
  let map =
    compute ~mem:[ 10; 11 ] ~edges:[] [ route 10 1 [ 1; 11 ]; route 11 2 [ 2 ] ]
  in
  match decision map 10 with
  | Some d ->
    Alcotest.(check bool) "bridge hop" true
      (d.As_graph.hop = As_graph.Bridge { via_neighbor = asn 1; to_member = asn 11 });
    Alcotest.(check (list int)) "stitched path" [ 1; 11; 2 ] (path_ints d)
  | None -> Alcotest.fail "bridge must route 10"

let test_bridge_requires_target_route () =
  (* A bridge into a sub-cluster that itself has no route to the prefix
     must not produce a decision. *)
  let map = compute ~mem:[ 10; 11 ] ~edges:[] [ route 10 1 [ 1; 11 ] ] in
  Alcotest.(check bool) "dead-end bridge unused" true (decision map 10 = None)

let test_decision_order_deterministic () =
  let run () =
    compute ~mem:[ 10; 11; 12 ] ~edges:[ (10, 11); (11, 12) ]
      [ route 10 1 [ 1 ]; route 12 2 [ 2; 3 ] ]
  in
  let a = run () and b = run () in
  let render m =
    Net.Asn.Map.bindings m
    |> List.map (fun (k, d) -> Fmt.str "%a:%a" Net.Asn.pp k As_graph.pp_decision d)
    |> String.concat ";"
  in
  Alcotest.(check string) "bit-identical decisions" (render a) (render b)

(* The paper's design insight, §3: "we can not naively use the same loop
   avoidance mechanism as BGP."  Two members of one sub-cluster hold
   mutually-referential stale routes through each other (m1's route via
   legacy l1 re-enters at m2, m2's via l2 re-enters at m1).  BGP's
   own-ASN check passes both; realizing them forwards
   m1 -> l1 -> m2 -> l2 -> m1 — a loop.  The AS-graph transformation
   discards both. *)
let mutual_stale_routes =
  (* l1 = 101, l2 = 102, origin = 200 *)
  [ route 10 101 [ 101; 11; 200 ]; route 11 102 [ 102; 10; 200 ] ]

let test_naive_loops_on_mutual_stale_routes () =
  let members_set = members [ 10; 11 ] in
  let naive =
    As_graph.naive_compute ~members:members_set ~routes:mutual_stale_routes
      ~originators:Net.Asn.Set.empty ()
  in
  (* naive accepts both poisoned routes... *)
  Alcotest.(check bool) "naive routes m1" true
    (match decision naive 10 with
    | Some d -> d.As_graph.hop = As_graph.Exit { neighbor = asn 101 }
    | None -> false);
  Alcotest.(check bool) "naive routes m2" true
    (match decision naive 11 with
    | Some d -> d.As_graph.hop = As_graph.Exit { neighbor = asn 102 }
    | None -> false);
  (* ...and the realized forwarding loops: each legacy AS forwards into
     the member its route re-enters, per its own (stale) path. *)
  let legacy_next = function 101 -> Some 11 | 102 -> Some 10 | _ -> None in
  let member_next m =
    match decision naive m with
    | Some { As_graph.hop = As_graph.Exit { neighbor }; _ } -> Some (Net.Asn.to_int neighbor)
    | _ -> None
  in
  let next hop = if hop >= 100 then legacy_next hop else member_next hop in
  let rec walk hop seen steps =
    if steps > 16 then `Loop
    else if List.mem hop seen then `Loop
    else match next hop with None -> `Dead_end hop | Some n -> walk n (hop :: seen) (steps + 1)
  in
  (match walk 10 [] 0 with
  | `Loop -> ()
  | `Dead_end at -> Alcotest.failf "expected a forwarding loop, stopped at %d" at);
  (* the transformation refuses both routes instead *)
  let g = switch_graph [ (10, 11) ] in
  let safe =
    As_graph.compute ~members:members_set ~switch_graph:g ~routes:mutual_stale_routes
      ~originators:Net.Asn.Set.empty ()
  in
  Alcotest.(check bool) "transformation discards m1's poisoned route" true
    (decision safe 10 = None);
  Alcotest.(check bool) "transformation discards m2's poisoned route" true
    (decision safe 11 = None)

let test_naive_matches_compute_on_clean_routes () =
  (* with no cluster re-entry the two strategies agree on exits *)
  let members_set = members [ 10; 11 ] in
  let routes = [ route 10 101 [ 101; 200 ]; route 11 102 [ 102; 105; 200 ] ] in
  let naive =
    As_graph.naive_compute ~members:members_set ~routes ~originators:Net.Asn.Set.empty ()
  in
  let g = switch_graph [] in
  Net.Asn.Set.iter (fun m -> Net.Graph.add_node g (Net.Asn.to_int m)) members_set;
  let safe =
    As_graph.compute ~members:members_set ~switch_graph:g ~routes
      ~originators:Net.Asn.Set.empty ()
  in
  List.iter
    (fun m ->
      match (decision naive m, decision safe m) with
      | Some a, Some b ->
        Alcotest.(check bool) (Fmt.str "same hop for %d" m) true
          (a.As_graph.hop = b.As_graph.hop)
      | _ -> Alcotest.fail "both must route")
    [ 10; 11 ]

(* Loop freedom: follow Intra hops from any member; must terminate at an
   Exit/Bridge/Deliver_local without revisiting a member. *)
let follows_loop_free map =
  let ok = ref true in
  Net.Asn.Map.iter
    (fun start _ ->
      let rec walk m visited =
        match Net.Asn.Map.find_opt m map with
        | None -> ()
        | Some (d : As_graph.decision) -> (
          match d.As_graph.hop with
          | As_graph.Intra { next_member } ->
            if List.exists (Net.Asn.equal next_member) visited then ok := false
            else walk next_member (next_member :: visited)
          | As_graph.Exit _ | As_graph.Bridge _ | As_graph.Deliver_local -> ())
      in
      walk start [ start ])
    map;
  !ok

let prop_loop_free =
  let gen =
    QCheck.Gen.(
      let* n_members = int_range 1 6 in
      let* edges =
        list_size (int_range 0 8) (pair (int_range 0 (n_members - 1)) (int_range 0 (n_members - 1)))
      in
      let* n_routes = int_range 0 8 in
      let* routes =
        list_repeat n_routes
          (let* m = int_range 0 (n_members - 1) in
           let* neighbor = int_range 100 110 in
           let* len = int_range 1 4 in
           let* path = list_repeat len (int_range 100 120) in
           return (m, neighbor, path))
      in
      return (n_members, edges, routes))
  in
  QCheck.Test.make ~name:"compiled cluster routes are loop-free" ~count:300
    (QCheck.make ~print:(fun (n, e, r) ->
         Fmt.str "members=%d edges=%d routes=%d" n (List.length e) (List.length r))
       gen)
    (fun (n_members, edges, routes) ->
      let mem = List.init n_members (fun i -> 10 + i) in
      let edges =
        List.filter_map (fun (a, b) -> if a <> b then Some (10 + a, 10 + b) else None) edges
      in
      let routes = List.map (fun (m, nb, path) -> route (10 + m) nb (nb :: path)) routes in
      let map = compute ~mem ~edges routes in
      follows_loop_free map)

(* Bridge decisions must genuinely cross sub-clusters: a bridge into the
   member's own sub-cluster is exactly the loop case the transformation
   exists to discard. *)
let prop_bridges_cross_subclusters =
  QCheck.Test.make ~name:"bridges always cross sub-clusters" ~count:300
    (QCheck.make ~print:(fun i -> string_of_int i) QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let rng = Engine.Rng.create seed in
      let n_members = 2 + Engine.Rng.int rng 4 in
      let mem = List.init n_members (fun i -> 10 + i) in
      let edges =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j -> if i < j && Engine.Rng.chance rng 0.4 then Some (10 + i, 10 + j) else None)
              (List.init n_members Fun.id))
          (List.init n_members Fun.id)
      in
      let routes =
        List.concat_map
          (fun i ->
            if Engine.Rng.chance rng 0.7 then begin
              let nb = 100 + Engine.Rng.int rng 5 in
              let mid =
                if Engine.Rng.chance rng 0.3 then [ 10 + Engine.Rng.int rng n_members ] else []
              in
              [ route (10 + i) nb ((nb :: mid) @ [ 200 ]) ]
            end
            else [])
          (List.init n_members Fun.id)
      in
      let g = switch_graph edges in
      List.iter (fun m -> Net.Graph.add_node g m) mem;
      let map =
        As_graph.compute
          ~members:(members mem)
          ~switch_graph:g ~routes ~originators:Net.Asn.Set.empty ()
      in
      (* recompute sub-cluster ids the same way *)
      let comp_of =
        let comps = Net.Graph.components g in
        fun m ->
          let mi = Net.Asn.to_int m in
          List.find_opt (fun c -> List.mem mi c) comps
      in
      Net.Asn.Map.for_all
        (fun m (d : As_graph.decision) ->
          match d.As_graph.hop with
          | As_graph.Bridge { to_member; _ } -> comp_of to_member <> comp_of m
          | As_graph.Exit _ | As_graph.Intra _ | As_graph.Deliver_local -> true)
        map)

let suite =
  [
    Alcotest.test_case "classify_path" `Quick test_classify;
    Alcotest.test_case "direct exit" `Quick test_direct_exit;
    Alcotest.test_case "best exit chosen" `Quick test_best_exit_chosen;
    Alcotest.test_case "intra-cluster routing" `Quick test_intra_cluster_routing;
    Alcotest.test_case "exit vs intra trade-off" `Quick test_exit_vs_intra_tradeoff;
    Alcotest.test_case "originator" `Quick test_originator;
    Alcotest.test_case "unreachable absent" `Quick test_unreachable_absent;
    Alcotest.test_case "same-subcluster re-entry discarded" `Quick
      test_same_subcluster_reentry_discarded;
    Alcotest.test_case "bridge across sub-clusters" `Quick test_bridge_across_subclusters;
    Alcotest.test_case "dead-end bridge unused" `Quick test_bridge_requires_target_route;
    Alcotest.test_case "deterministic decisions" `Quick test_decision_order_deterministic;
    Alcotest.test_case "naive loop-avoidance loops (paper insight)" `Quick
      test_naive_loops_on_mutual_stale_routes;
    Alcotest.test_case "naive agrees on clean routes" `Quick
      test_naive_matches_compute_on_clean_routes;
    QCheck_alcotest.to_alcotest prop_loop_free;
    QCheck_alcotest.to_alcotest prop_bridges_cross_subclusters;
  ]
