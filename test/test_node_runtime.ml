(* Engine.Node actor runtime: lifecycle, mailboxes, epoch guards, owned
   timers, and whole-network checkpoint/restore equivalence. *)

open Engine

let asn = Topology.Artificial.asn

let cfg = Framework.Config.fast_test

(* --- Lifecycle ---------------------------------------------------------- *)

let test_lifecycle_and_hooks () =
  let sim = Sim.create ~seed:1 () in
  let n = Node.create ~kind:"test" sim ~name:"n0" in
  let log = ref [] in
  Node.on_start n (fun ~first -> log := (if first then "start-first" else "start") :: !log);
  Node.on_crash n (fun () -> log := "crash" :: !log);
  Alcotest.(check bool) "created, not up" false (Node.is_up n);
  Node.start n;
  Alcotest.(check bool) "up after start" true (Node.is_up n);
  Alcotest.(check int) "epoch 0" 0 (Node.epoch n);
  Node.start n;
  (* idempotent *)
  Node.crash n;
  Alcotest.(check bool) "down after crash" false (Node.is_up n);
  Alcotest.(check int) "epoch bumped" 1 (Node.epoch n);
  Alcotest.(check int) "crash counted" 1 (Node.crashes n);
  Node.crash n;
  (* no-op while down *)
  Alcotest.(check int) "crash idempotent while down" 1 (Node.crashes n);
  Node.restart n;
  Alcotest.(check bool) "up after restart" true (Node.is_up n);
  Alcotest.(check (list string)) "hook order"
    [ "start-first"; "crash"; "start" ]
    (List.rev !log)

let test_epoch_guard () =
  let sim = Sim.create ~seed:2 () in
  let n = Node.create sim ~name:"g" in
  Node.start n;
  let fired = ref [] in
  Node.schedule_at n (Time.ms 3) (fun () -> fired := "before" :: !fired);
  Node.schedule_at n (Time.ms 10) (fun () -> fired := "stale" :: !fired);
  ignore (Sim.schedule_at sim (Time.ms 5) (fun () -> Node.crash n));
  ignore (Sim.schedule_at sim (Time.ms 6) (fun () -> Node.restart n));
  (* scheduled before the crash -> voided by the epoch bump, even though
     the node is up again when the event fires *)
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "pre-crash event fired, stale one voided" [ "before" ]
    (List.rev !fired);
  Node.schedule_after n (Time.ms 1) (fun () -> fired := "fresh" :: !fired);
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "post-restart scheduling works" [ "before"; "fresh" ]
    (List.rev !fired)

let test_mailbox_order_and_overflow () =
  let sim = Sim.create ~seed:3 () in
  let n = Node.create ~mailbox_capacity:2 sim ~name:"mb" in
  Node.start n;
  let seen = ref [] in
  let port = ref None in
  let handler ~from:_ msg =
    seen := msg :: !seen;
    if msg = "first" then begin
      (* re-entrant deliveries queue behind the draining message *)
      Alcotest.(check bool) "re-entrant enqueue" true
        (Node.deliver (Option.get !port) ~from:0 "a");
      Alcotest.(check bool) "re-entrant enqueue" true
        (Node.deliver (Option.get !port) ~from:0 "b");
      Alcotest.(check bool) "overflow refused" false
        (Node.deliver (Option.get !port) ~from:0 "c")
    end
  in
  let p = Node.port n ~handler in
  port := Some p;
  Alcotest.(check bool) "delivered" true (Node.deliver p ~from:0 "first");
  Alcotest.(check (list string)) "arrival order" [ "first"; "a"; "b" ] (List.rev !seen);
  Alcotest.(check int) "drop accounted" 1 (Node.mailbox_dropped n);
  Alcotest.(check int) "processed" 3 (Node.processed n);
  Node.crash n;
  Alcotest.(check bool) "down node refuses" false (Node.deliver p ~from:0 "x")

let test_crash_cancels_owned_timers () =
  let sim = Sim.create ~seed:4 () in
  let n = Node.create sim ~name:"t" in
  Node.start n;
  let fired = ref false in
  let tm = Node.timer n ~name:"tick" ~callback:(fun () -> fired := true) in
  Timer.start tm (Time.ms 10);
  ignore (Sim.schedule_at sim (Time.ms 5) (fun () -> Node.crash n));
  ignore (Sim.run sim);
  Alcotest.(check bool) "timer cancelled by crash" false !fired;
  Alcotest.(check bool) "disarmed" false (Timer.is_armed tm)

(* --- Component crash/restart through the framework ---------------------- *)

let test_router_crash_restart_reconverges () =
  let exp = Framework.Experiment.create ~config:cfg ~seed:11 (Topology.Artificial.clique 4) in
  let net = Framework.Experiment.network exp in
  let prefix = Framework.Experiment.announce exp (asn 0) in
  ignore (Framework.Experiment.settle exp);
  let r1 = Option.get (Framework.Network.router net (asn 1)) in
  Alcotest.(check bool) "route present pre-crash" true (Bgp.Router.best r1 prefix <> None);
  Framework.Network.crash_node net (asn 1);
  Alcotest.(check bool) "volatile RIB lost" true (Bgp.Router.loc_entries r1 = []);
  let host0 = (Framework.Network.plan net).Framework.Addressing.host_addr (asn 0) in
  Alcotest.(check bool) "FIB cleared with the crash" true
    (Framework.Network.forwarding_at net (asn 1) host0 = Framework.Network.No_route);
  Framework.Network.restart_node net (asn 1);
  ignore (Framework.Experiment.settle exp);
  Alcotest.(check bool) "session re-established" true
    (Bgp.Router.peer_established r1 (asn 0));
  Alcotest.(check bool) "route relearned" true (Bgp.Router.best r1 prefix <> None);
  Alcotest.(check bool) "FIB repopulated" true
    (Framework.Network.forwarding_at net (asn 1) host0 <> Framework.Network.No_route)

let hybrid_spec n members =
  let spec = Topology.Artificial.clique n in
  let asns = Topology.Spec.asns spec in
  Topology.Spec.with_sdn spec (List.filteri (fun i _ -> i >= n - members) asns)

let test_controller_crash_restart_reconverges () =
  let exp = Framework.Experiment.create ~config:cfg ~seed:12 (hybrid_spec 6 3) in
  let net = Framework.Experiment.network exp in
  let prefix = Framework.Experiment.announce exp (asn 0) in
  ignore (Framework.Experiment.settle exp);
  let member = asn 5 in
  Alcotest.(check bool) "member reachable pre-crash" true
    (Framework.Experiment.reachable exp ~src:member ~dst:(asn 0));
  Framework.Network.crash_controller net;
  let ctrl = Option.get (Framework.Network.controller net) in
  Alcotest.(check bool) "controller RIB lost" true
    (Cluster_ctl.Controller.rib_routes ctrl prefix = []);
  Framework.Network.restart_controller net;
  ignore (Framework.Experiment.settle exp);
  Alcotest.(check bool) "routes back after cluster-head restart" true
    (Cluster_ctl.Controller.rib_routes ctrl prefix <> []);
  Alcotest.(check bool) "member reachable again" true
    (Framework.Experiment.reachable exp ~src:member ~dst:(asn 0))

(* --- Checkpoint / restore equivalence ----------------------------------- *)

(* Everything observable that convergence produces: per-router Loc-RIBs,
   per-switch flow tables, and the collector's full event dump (which is
   what FIG2 convergence times are computed from). *)
let fingerprint net =
  let buf = Buffer.create 8192 in
  List.iter
    (fun a ->
      match Framework.Network.router net a with
      | Some r ->
        List.iter
          (fun (p, route) ->
            Buffer.add_string buf
              (Fmt.str "%a loc %a %a\n" Net.Asn.pp a Net.Ipv4.pp_prefix p Bgp.Route.pp route))
          (Bgp.Router.loc_entries r)
      | None -> (
        match Framework.Network.switch net a with
        | Some sw ->
          List.iter
            (fun rule ->
              Buffer.add_string buf (Fmt.str "%a flow %a\n" Net.Asn.pp a Sdn.Flow.pp rule))
            (Sdn.Flow_table.entries_sorted (Sdn.Switch.table sw))
        | None -> ()))
    (Framework.Network.asns net);
  Buffer.add_string buf (Bgp.Collector.dump (Framework.Network.collector net));
  Buffer.contents buf

(* Drive a fresh 16-AS hybrid clique to the mid-convergence instant: an
   announced prefix settles, then a withdrawal is cut off [mid] after it
   starts propagating. *)
let drive_to_mid seed =
  let net = Framework.Network.create ~config:cfg ~seed (hybrid_spec 16 4) in
  Framework.Network.start net;
  let origin = asn 0 in
  let prefix = (Framework.Network.plan net).Framework.Addressing.origin_prefix origin in
  Framework.Network.originate net origin prefix;
  let settled = Framework.Network.settle net in
  Framework.Network.withdraw net origin prefix;
  let mid = Time.add settled (Time.ms 20) in
  Framework.Network.run_until net mid;
  (net, prefix, mid)

let test_checkpoint_restore_byte_identical () =
  let seed = 77 in
  (* Reference: the uninterrupted run. *)
  let net_a, prefix, mid = drive_to_mid seed in
  let quiesced_a = Framework.Network.settle net_a in
  let fp_a = fingerprint net_a in
  let conv_a =
    Bgp.Collector.last_update_for (Framework.Network.collector net_a) prefix
  in
  (* The same run, checkpointed mid-convergence and restored into a
     fresh simulator. *)
  let net_b, _, mid_b = drive_to_mid seed in
  Alcotest.(check int) "identical mid instant" (Time.to_us mid) (Time.to_us mid_b);
  let ck = Framework.Network.checkpoint net_b in
  Alcotest.(check int) "checkpoint stamped at mid" (Time.to_us mid)
    (Time.to_us (Framework.Network.checkpoint_time ck));
  let net_c = Framework.Network.restore ck in
  let quiesced_c = Framework.Network.settle net_c in
  let conv_c =
    Bgp.Collector.last_update_for (Framework.Network.collector net_c) prefix
  in
  (* The withdrawal was genuinely still converging at the checkpoint. *)
  (match conv_a with
  | Some t -> Alcotest.(check bool) "checkpoint taken mid-convergence" true Time.(mid < t)
  | None -> Alcotest.fail "no collector activity for the withdrawn prefix");
  Alcotest.(check int) "quiescence instants identical" (Time.to_us quiesced_a)
    (Time.to_us quiesced_c);
  Alcotest.(check (option int)) "final collector update identical"
    (Option.map Time.to_us conv_a) (Option.map Time.to_us conv_c);
  Alcotest.(check string) "RIBs, flow tables and collector dump byte-identical" fp_a
    (fingerprint net_c)

(* Restoring must also commute with *further* lifecycle actions: crash a
   router after the restore point in both worlds and compare again. *)
let test_checkpoint_then_crash_equivalent () =
  let seed = 78 in
  let continue_with_crash net =
    Framework.Network.crash_node net (asn 3);
    ignore (Framework.Network.settle net);
    Framework.Network.restart_node net (asn 3);
    ignore (Framework.Network.settle net);
    fingerprint net
  in
  let net_a, _, _ = drive_to_mid seed in
  let fp_a = continue_with_crash net_a in
  let net_b, _, _ = drive_to_mid seed in
  let net_c = Framework.Network.restore (Framework.Network.checkpoint net_b) in
  let fp_c = continue_with_crash net_c in
  Alcotest.(check string) "crash after restore matches crash after continue" fp_a fp_c

let suite =
  [
    Alcotest.test_case "lifecycle and hooks" `Quick test_lifecycle_and_hooks;
    Alcotest.test_case "epoch guard" `Quick test_epoch_guard;
    Alcotest.test_case "mailbox order and overflow" `Quick test_mailbox_order_and_overflow;
    Alcotest.test_case "crash cancels owned timers" `Quick test_crash_cancels_owned_timers;
    Alcotest.test_case "router crash/restart reconverges" `Quick
      test_router_crash_restart_reconverges;
    Alcotest.test_case "controller crash/restart reconverges" `Quick
      test_controller_crash_restart_reconverges;
    Alcotest.test_case "checkpoint/restore byte-identical" `Quick
      test_checkpoint_restore_byte_identical;
    Alcotest.test_case "checkpoint then crash equivalent" `Quick
      test_checkpoint_then_crash_equivalent;
  ]
