(* Sharded single-run execution: one simulation partitioned across N
   domains, bit-identical to the same run at shards = 1.

   The scheme is REPLICATED CONSTRUCTION, PARTITIONED EXECUTION.  Every
   shard builds the complete [Network] from the same (spec, config,
   seed) — construction happens in a fixed order, so every per-component
   RNG stream is split identically on every shard — but only the nodes a
   shard OWNS (per the deterministic {!Topology.Partition}) come alive:
   [Network.start] and link watchers are ownership-gated, and the fabric
   routes sends towards non-owned nodes into a per-epoch outbox that
   {!Engine.Shard} exchanges at the barrier.  Injected deliveries carry
   the canonical (source node, per-channel sequence) key the sending
   shard assigned, and every sim runs in {!Engine.Sim.Canonical} order,
   so the merged event order is independent of the partitioning.

   Driver commands (originate/withdraw/link events) are replicated: one
   keyed driver event per phase executes in EVERY shard at the same
   instant — link flips apply to each shard's replica of the topology,
   router actions only to the owner — which keeps link state and
   measurement baselines consistent without any cross-shard control
   channel.  Phases are scheduled at global quiescence (all queues
   drained), at [max shard clock + 1s], so multi-phase experiments keep
   the settle-then-act structure of their sequential counterparts.

   What is NOT supported: lossy links (the loss draw would consume a
   shared RNG stream in partition-dependent order — refused up front)
   and causal tracing (span ids are assigned in execution order within a
   shard; forced to [Disabled]). *)

type command =
  | Originate of Net.Asn.t * Net.Ipv4.prefix
  | Withdraw of Net.Asn.t * Net.Ipv4.prefix
  | Fail_link of Net.Asn.t * Net.Asn.t
  | Recover_link of Net.Asn.t * Net.Asn.t

type phase = { commands : command list; measured : Net.Ipv4.prefix option }

type phase_outcome = {
  started_at : Engine.Time.t;  (** the instant the phase's commands executed *)
  ended_at : Engine.Time.t;  (** global quiescence closing the phase *)
  collector_updates : int;  (** collector events during the phase *)
  measurement : Convergence.measurement option;
}

type result = {
  shards : int;
  partition_sizes : int array;
  cut_links : int;
  phases : phase_outcome list;
  metrics : Engine.Metrics.snapshot;  (** merged across shards *)
  collector_last : (Net.Ipv4.prefix * Engine.Time.t) list;
  collector_total : int;
  rib_routes : int;
  adj_in_routes : int;
  end_time : Engine.Time.t;
  settled : bool;
  stats : Engine.Shard.stats;
}

(* Per-shard, per-phase journal entry; merged on the caller after the
   run.  All fields are plain data, safe to move across domains. *)
type phase_log = {
  l_start : Engine.Time.t;
  l_end : Engine.Time.t;
  l_changes : int;
  l_last_change : Engine.Time.t option;
  l_collector : int;
}

type shard_out = {
  o_phases : phase_log list;  (* phase order *)
  o_metrics : Engine.Metrics.snapshot;
  o_collector_last : (Net.Ipv4.prefix * Engine.Time.t) list;
  o_collector_total : int;
  o_rib : int;
  o_adj : int;
  o_now : Engine.Time.t;
}

let phase_gap = Engine.Time.sec 1

(* The conservative lookahead: a lower bound on EVERY link's delay —
   including intra-shard ones, so the epoch structure (and with it the
   budget/quiescence decision points) is the same for every shard count,
   N = 1 included. *)
let lookahead_of ~config spec =
  let open Engine.Time in
  let base = config.Config.collector_link_delay in
  let base =
    if Topology.Spec.sdn_asns spec <> [] then min base config.Config.control_link_delay
    else base
  in
  List.fold_left
    (fun acc (l : Topology.Spec.link_spec) ->
      match l.Topology.Spec.delay_us with
      | Some us -> min acc (Engine.Time.us us)
      | None -> min acc config.Config.default_link_delay)
    base (Topology.Spec.links spec)

(* Gauges that record a "latest simulated instant" must merge by max;
   everything else (counts, including gauges only the owning shard ever
   moves off 0) merges by sum. *)
let merge_resolve ~name ~labels:_ =
  if String.equal name "convergence_last_change_seconds" then `Max else `Sum

(* Driver-command bookkeeping events execute once per SHARD, not once
   per run — drop their category series before merging so the merged
   snapshot matches what a single shard records. *)
let strip_cmd_series (snap : Engine.Metrics.snapshot) =
  let is_cmd (s : Engine.Metrics.sample) =
    List.exists
      (fun (k, v) -> String.equal k "category" && String.equal v "shard.cmd")
      s.Engine.Metrics.labels
  in
  {
    snap with
    Engine.Metrics.samples = List.filter (fun s -> not (is_cmd s)) snap.Engine.Metrics.samples;
  }

let run ?(shards = 1) ?(partition_seed = 0) ?budget ?clock ~config ~seed ~phases spec =
  if shards < 1 then invalid_arg "Sharding.run: shards must be >= 1";
  let lookahead = lookahead_of ~config spec in
  if Engine.Time.(lookahead <= Engine.Time.span_zero) then
    invalid_arg "Sharding.run: zero-delay link defeats the epoch lookahead";
  (* causal tracing assigns span ids in execution order within one sim —
     meaningless across shards; keep sharded runs comparable by forcing
     it off for every N, including 1 *)
  let config = { config with Config.causal = Engine.Causal.Disabled } in
  let partition = Topology.Partition.compute ~seed:partition_seed ~shards spec in
  let shard_of_node node =
    if node < 0 then 0 (* collector and controller live with the SDN cluster *)
    else Topology.Partition.shard_of partition (Net.Asn.of_int node)
  in
  let n_phases = List.length phases in
  let make i =
    let owned node = shard_of_node node = i in
    let network = Network.create ~config ~order:Engine.Sim.Canonical ~owned ~seed spec in
    let sim = Network.sim network in
    let fabric = Network.fabric network in
    List.iter
      (fun l ->
        if Net.Link.loss l > 0.0 then
          invalid_arg "Sharding.run: lossy links are not supported in sharded mode")
      (Net.Netsim.links fabric);
    let watcher = Convergence.attach network in
    let collector = Network.collector network in
    (* cross-shard exchange: sends towards non-owned nodes buffer here *)
    let outbox = ref [] in
    Net.Netsim.set_remote_route fabric ~local:owned ~route:(fun r ->
        outbox := (shard_of_node r.Net.Netsim.r_dst, r) :: !outbox);
    let flush () =
      let out = List.rev !outbox in
      outbox := [];
      out
    in
    let inject ~src:_ msgs =
      List.iter
        (fun r ->
          Net.Netsim.inject_remote fabric
            { r with Net.Netsim.r_payload = Payload.rehash r.Net.Netsim.r_payload })
        msgs
    in
    (* driver events are replicated in every shard; exclude them from the
       budget so the "real" event count is partition-independent *)
    let cmd_events = ref 0 in
    let real_executed () = Engine.Sim.executed sim - !cmd_events in
    let cmd_seq = ref 0 in
    let journal = ref [] in
    let remaining = ref phases in
    let pending = ref None in
    let exec_command = function
      | Originate (asn, prefix) ->
        if owned (Net.Asn.to_int asn) then Network.originate network asn prefix
      | Withdraw (asn, prefix) ->
        if owned (Net.Asn.to_int asn) then Network.withdraw network asn prefix
      | Fail_link (a, b) -> Network.fail_link network a b (* replicated link state *)
      | Recover_link (a, b) -> Network.recover_link network a b
    in
    let finalize_pending ~max_now =
      match !pending with
      | None -> ()
      | Some (start, measured, changes_before, collector_before) ->
        let changes, last_change =
          match measured with
          | None -> (0, None)
          | Some p ->
            let changes = Convergence.control_changes watcher p - changes_before in
            let last =
              match Convergence.last_control_change watcher p with
              | Some t when Engine.Time.(t >= start) -> Some t
              | Some _ | None -> None
            in
            (changes, last)
        in
        journal :=
          {
            l_start = start;
            l_end = max_now;
            l_changes = changes;
            l_last_change = last_change;
            l_collector = Bgp.Collector.event_count collector - collector_before;
          }
          :: !journal;
        pending := None
    in
    let on_quiescent ~max_now =
      finalize_pending ~max_now;
      match !remaining with
      | [] -> false
      | phase :: rest ->
        remaining := rest;
        let at = Engine.Time.add max_now phase_gap in
        let key = { Engine.Sim.kclass = -1; knode = 0; kseq = !cmd_seq } in
        incr cmd_seq;
        ignore
          (Engine.Sim.schedule_at ~category:"shard.cmd" ~key sim at (fun () ->
               incr cmd_events;
               let changes_before =
                 match phase.measured with
                 | Some p -> Convergence.control_changes watcher p
                 | None -> 0
               in
               pending :=
                 Some (at, phase.measured, changes_before, Bgp.Collector.event_count collector);
               List.iter exec_command phase.commands));
        true
    in
    Network.start network;
    let finish () =
      let rib, adj =
        Net.Asn.Map.fold
          (fun asn r (loc, a) ->
            if owned (Net.Asn.to_int asn) then
              (loc + Bgp.Router.loc_size r, a + Bgp.Router.adj_in_size r)
            else (loc, a))
          (Network.routers network) (0, 0)
      in
      {
        o_phases = List.rev !journal;
        o_metrics =
          strip_cmd_series
            (Engine.Metrics.snapshot (Engine.Sim.metrics sim) ~at:(Engine.Sim.now sim));
        o_collector_last = Bgp.Collector.last_updates collector;
        o_collector_total = Bgp.Collector.event_count collector;
        o_rib = rib;
        o_adj = adj;
        o_now = Engine.Sim.now sim;
      }
    in
    ( {
        Engine.Shard.sim;
        real_executed;
        flush;
        inject;
        on_quiescent;
      },
      finish )
  in
  let outs, stats = Engine.Shard.run ~shards ~lookahead ?clock ?budget make in
  (* --- Merge ------------------------------------------------------------- *)
  let end_time = Array.fold_left (fun acc o -> Engine.Time.max acc o.o_now) Engine.Time.zero outs in
  let metrics =
    Engine.Metrics.merge ~resolve:merge_resolve
      (Array.to_list (Array.map (fun o -> o.o_metrics) outs))
  in
  let completed_phases =
    Array.fold_left (fun acc o -> Stdlib.min acc (List.length o.o_phases)) n_phases outs
  in
  let phase_specs = Array.of_list phases in
  let phases_merged =
    List.init completed_phases (fun k ->
        let logs = Array.to_list (Array.map (fun o -> List.nth o.o_phases k) outs) in
        let started_at = (List.hd logs).l_start in
        let ended_at = (List.hd logs).l_end in
        let collector_updates = List.fold_left (fun acc l -> acc + l.l_collector) 0 logs in
        let measurement =
          match phase_specs.(k).measured with
          | None -> None
          | Some prefix ->
            let changes = List.fold_left (fun acc l -> acc + l.l_changes) 0 logs in
            let last_change =
              List.fold_left
                (fun acc l ->
                  match (acc, l.l_last_change) with
                  | None, x | x, None -> x
                  | Some a, Some b -> Some (Engine.Time.max a b))
                None logs
            in
            Some
              {
                Convergence.prefix;
                event_time = started_at;
                settled_at = ended_at;
                last_change;
                convergence =
                  Option.map (fun c -> Engine.Time.diff c started_at) last_change;
                changes;
              }
        in
        { started_at; ended_at; collector_updates; measurement })
  in
  {
    shards;
    partition_sizes = Topology.Partition.sizes partition;
    cut_links = Topology.Partition.cut_links partition spec;
    phases = phases_merged;
    metrics;
    collector_last =
      Array.fold_left (fun acc o -> if acc = [] then o.o_collector_last else acc) [] outs;
    collector_total = Array.fold_left (fun acc o -> acc + o.o_collector_total) 0 outs;
    rib_routes = Array.fold_left (fun acc o -> acc + o.o_rib) 0 outs;
    adj_in_routes = Array.fold_left (fun acc o -> acc + o.o_adj) 0 outs;
    end_time;
    settled = stats.Engine.Shard.settled;
    stats;
  }

(* Deterministic projection of a result — everything except wall-clock
   stall times; two runs of the same experiment at different shard
   counts must agree on this. *)
type signature = {
  g_phases : (Engine.Time.t * Engine.Time.t * int * Convergence.measurement option) list;
  g_metrics : Engine.Metrics.snapshot;
  g_collector_last : (Net.Ipv4.prefix * Engine.Time.t) list;
  g_collector_total : int;
  g_rib : int;
  g_adj : int;
  g_end : Engine.Time.t;
  g_settled : bool;
}

let signature r =
  {
    g_phases =
      List.map
        (fun p -> (p.started_at, p.ended_at, p.collector_updates, p.measurement))
        r.phases;
    g_metrics = r.metrics;
    g_collector_last = r.collector_last;
    g_collector_total = r.collector_total;
    g_rib = r.rib_routes;
    g_adj = r.adj_in_routes;
    g_end = r.end_time;
    g_settled = r.settled;
  }

let equal_result a b = Stdlib.compare (signature a) (signature b) = 0
