(** Structured event log, renderable to Quagga-like text lines for the
    log-analysis tooling.

    Domain-safety: a trace buffer is unsynchronized mutable state owned
    by its simulation — one sim, one domain at a time.  Parallel sweeps
    ({!Pool}) are safe because every run builds its own sim and thus its
    own trace; never hand one [t] to two domains. *)

type level = Debug | Info | Warn

type record = {
  time : Time.t;
  node : string;
  category : string;
  level : level;
  message : string;
}

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] bounds retained records: an exact ring that keeps
    precisely the [capacity] newest records, evicting one oldest record
    per insertion once full (0 = unbounded). *)

val set_enabled : t -> bool -> unit

val enabled : t -> bool

val record :
  t -> time:Time.t -> node:string -> category:string -> ?level:level -> string -> unit

val count : t -> int
(** Number of records currently retained. *)

val total : t -> int
(** Number of records ever recorded, unaffected by capacity eviction. *)

val warn_count : t -> int
(** Number of [Warn]-level records ever recorded — the metrics layer
    exports this as a health gauge. *)

val records : t -> record list
(** Oldest first. *)

val clear : t -> unit

val filter : ?node:string -> ?category:string -> ?since:Time.t -> t -> record list

val render_line : record -> string

val to_lines : t -> string list

val last_time_matching : t -> (record -> bool) -> Time.t option
(** Time of the most recent record satisfying the predicate. *)
