lib/net/asn.mli: Format Map Set
