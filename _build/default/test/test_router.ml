(* Bgp.Router: protocol behaviour over a minimal in-memory fabric
   (no Netsim — direct scheduled delivery), so each test controls exactly
   the peerings and policies involved. *)

open Engine

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let asn = Net.Asn.of_int

let fast_config =
  Bgp.Config.no_jitter
    {
      Bgp.Config.default with
      Bgp.Config.mrai = Time.sec 1;
      proc_delay_min = Time.ms 1;
      proc_delay_max = Time.ms 1;
    }

type harness = {
  sim : Sim.t;
  handlers : (int, from:int -> Bgp.Message.t -> unit) Hashtbl.t;
  mutable routers : Bgp.Router.t list;
}

let make_harness () = { sim = Sim.create ~seed:5 (); handlers = Hashtbl.create 8; routers = [] }

let add_router ?damping ?(config = fast_config) h n =
  let node_id = n in
  let send ~dst msg =
    match Hashtbl.find_opt h.handlers dst with
    | None -> false
    | Some handler ->
      ignore (Sim.schedule_after h.sim (Time.ms 1) (fun () -> handler ~from:node_id msg));
      true
  in
  let r =
    Bgp.Router.create ?damping ~sim:h.sim ~asn:(asn n) ~node_id
      ~router_id:(Net.Ipv4.addr_of_octets 10 0 (n mod 256) 1)
      ~config ~send ()
  in
  Hashtbl.replace h.handlers node_id (fun ~from msg -> Bgp.Router.handle_message r ~from msg);
  h.routers <- r :: h.routers;
  r

let peer_pair ?(rel_ab = Bgp.Policy.Unrestricted) ?(rel_ba = Bgp.Policy.Unrestricted) a b =
  Bgp.Router.add_peer a ~peer_asn:(Bgp.Router.asn b) ~peer_node:(Bgp.Router.node_id b)
    ~policy:(Bgp.Policy.make rel_ab);
  Bgp.Router.add_peer b ~peer_asn:(Bgp.Router.asn a) ~peer_node:(Bgp.Router.node_id a)
    ~policy:(Bgp.Policy.make rel_ba)

let run h = ignore (Sim.run h.sim)

let run_until h t = ignore (Sim.run ~until:t h.sim)

let path_of route = List.map Net.Asn.to_int (Bgp.Attrs.as_path (Bgp.Route.attrs route))

let test_session_establishment () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 in
  peer_pair a b;
  Bgp.Router.start a;
  Bgp.Router.start b;
  run h;
  Alcotest.(check bool) "a sees b" true (Bgp.Router.peer_established a (asn 65002));
  Alcotest.(check bool) "b sees a" true (Bgp.Router.peer_established b (asn 65001))

let test_one_sided_open () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 in
  peer_pair a b;
  Bgp.Router.open_session a (asn 65002);
  run h;
  Alcotest.(check bool) "responder established too" true
    (Bgp.Router.peer_established b (asn 65001))

let test_propagation_and_fib_hook () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 in
  peer_pair a b;
  let fib_events = ref [] in
  Bgp.Router.subscribe_best_change b (fun prefix best ->
      fib_events := (prefix, Option.map path_of best) :: !fib_events);
  Bgp.Router.start a;
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  (match Bgp.Router.best b (p "100.64.0.0/24") with
  | Some r ->
    Alcotest.(check (list int)) "path" [ 65001 ] (path_of r);
    Alcotest.(check (option int)) "learned from" (Some 65001)
      (Option.map Net.Asn.to_int (Bgp.Route.from_peer r))
  | None -> Alcotest.fail "b must learn the route");
  Alcotest.(check int) "fib hook fired" 1 (List.length !fib_events)

let test_initial_table_sync () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 in
  peer_pair a b;
  (* originate BEFORE the session exists *)
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  Bgp.Router.open_session a (asn 65002);
  run h;
  Alcotest.(check bool) "table synced on establish" true
    (Bgp.Router.best b (p "100.64.0.0/24") <> None)

let test_withdraw_propagates () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 in
  peer_pair a b;
  Bgp.Router.start a;
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  Bgp.Router.withdraw_origin a (p "100.64.0.0/24");
  run h;
  Alcotest.(check bool) "b dropped the route" true (Bgp.Router.best b (p "100.64.0.0/24") = None);
  Alcotest.(check int) "b loc-rib empty" 0 (Bgp.Router.loc_size b)

let test_transit_path () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 and c = add_router h 65003 in
  (* line topology a - b - c *)
  peer_pair a b;
  peer_pair b c;
  Bgp.Router.start a;
  Bgp.Router.start b;
  Bgp.Router.start c;
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  (match Bgp.Router.best c (p "100.64.0.0/24") with
  | Some r -> Alcotest.(check (list int)) "transit path" [ 65002; 65001 ] (path_of r)
  | None -> Alcotest.fail "c must learn via b");
  (* b must not advertise a's route back to a *)
  Alcotest.(check bool) "no re-advertisement to source" true
    (Bgp.Router.adj_out_find b ~peer:(asn 65001) (p "100.64.0.0/24") = None)

let test_loop_suppression_on_export () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 and c = add_router h 65003 in
  (* triangle *)
  peer_pair a b;
  peer_pair b c;
  peer_pair a c;
  List.iter Bgp.Router.start [ a; b; c ];
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  (* c's best is the direct path [a]; its alternative through b exists in
     adj-in but c must not export a route with 65002 in its path to b *)
  (match Bgp.Router.adj_out_find c ~peer:(asn 65002) (p "100.64.0.0/24") with
  | Some attrs ->
    Alcotest.(check bool) "no 65002 in exported path" false
      (Bgp.Attrs.path_contains attrs (asn 65002))
  | None -> ());
  (* and everyone's best is loop-free *)
  List.iter
    (fun r ->
      match Bgp.Router.best r (p "100.64.0.0/24") with
      | Some route ->
        Alcotest.(check bool) "own ASN not in best path" false
          (Bgp.Attrs.path_contains (Bgp.Route.attrs route) (Bgp.Router.asn r))
      | None -> if Bgp.Router.asn r <> asn 65001 then Alcotest.fail "router lost the route")
    [ a; b; c ]

let test_valley_free_transit () =
  let h = make_harness () in
  (* b has customer a, peers c and d: a's routes go to peers, but routes
     learned from peer c must not be exported to peer d. *)
  let a = add_router h 65001
  and b = add_router h 65002
  and c = add_router h 65003
  and d = add_router h 65004 in
  peer_pair ~rel_ab:Bgp.Policy.Provider ~rel_ba:Bgp.Policy.Customer a b;
  peer_pair ~rel_ab:Bgp.Policy.Peer ~rel_ba:Bgp.Policy.Peer b c;
  peer_pair ~rel_ab:Bgp.Policy.Peer ~rel_ba:Bgp.Policy.Peer b d;
  List.iter Bgp.Router.start [ a; b; c; d ];
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  Bgp.Router.originate c (p "100.64.2.0/24");
  run h;
  Alcotest.(check bool) "customer route reaches peer" true
    (Bgp.Router.best c (p "100.64.0.0/24") <> None);
  Alcotest.(check bool) "customer route reaches other peer" true
    (Bgp.Router.best d (p "100.64.0.0/24") <> None);
  Alcotest.(check bool) "peer route reaches customer" true
    (Bgp.Router.best a (p "100.64.2.0/24") <> None);
  Alcotest.(check bool) "peer route NOT re-exported to other peer" true
    (Bgp.Router.best d (p "100.64.2.0/24") = None)

let test_local_pref_beats_path_length () =
  let h = make_harness () in
  (* d learns a prefix from its customer c (long path) and its provider b
     (short path); customer must win. *)
  let a = add_router h 65001
  and b = add_router h 65002
  and c = add_router h 65003
  and d = add_router h 65004 in
  (* a - b - d (b provider of d), a - c (transit) - d (c customer of d) *)
  peer_pair a b;
  peer_pair a c;
  peer_pair ~rel_ab:Bgp.Policy.Customer ~rel_ba:Bgp.Policy.Provider b d;
  (* from b's view d is customer *)
  peer_pair ~rel_ab:Bgp.Policy.Provider ~rel_ba:Bgp.Policy.Customer c d;
  (* from c's view d is provider; from d's view c is customer *)
  List.iter Bgp.Router.start [ a; b; c; d ];
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  match Bgp.Router.best d (p "100.64.0.0/24") with
  | Some r ->
    Alcotest.(check (option int)) "chose the customer route" (Some 65003)
      (Option.map Net.Asn.to_int (Bgp.Route.from_peer r))
  | None -> Alcotest.fail "d must have the route"

let test_session_down_flushes () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 and c = add_router h 65003 in
  peer_pair a b;
  peer_pair b c;
  List.iter Bgp.Router.start [ a; b; c ];
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  Alcotest.(check bool) "c had it" true (Bgp.Router.best c (p "100.64.0.0/24") <> None);
  (* kill the a-b session on both sides *)
  Bgp.Router.session_down b (asn 65001);
  Bgp.Router.session_down a (asn 65002);
  run h;
  Alcotest.(check bool) "b flushed" true (Bgp.Router.best b (p "100.64.0.0/24") = None);
  Alcotest.(check bool) "withdrawal propagated to c" true
    (Bgp.Router.best c (p "100.64.0.0/24") = None)

let test_reestablish_resyncs () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 in
  peer_pair a b;
  List.iter Bgp.Router.start [ a; b ];
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  Bgp.Router.session_down a (asn 65002);
  Bgp.Router.session_down b (asn 65001);
  run h;
  Alcotest.(check bool) "gone after down" true (Bgp.Router.best b (p "100.64.0.0/24") = None);
  Bgp.Router.open_session a (asn 65002);
  run h;
  Alcotest.(check bool) "back after re-establish" true
    (Bgp.Router.best b (p "100.64.0.0/24") <> None)

let test_export_prepending () =
  let h = make_harness () in
  (* a reaches d directly (prepended x3) or via b (clean): the prepended
     direct path must lose at d *)
  let a = add_router h 65001 and b = add_router h 65002 and d = add_router h 65004 in
  Bgp.Router.add_peer a ~peer_asn:(Bgp.Router.asn d) ~peer_node:65004
    ~policy:(Bgp.Policy.make ~export_prepend:3 Bgp.Policy.Unrestricted);
  Bgp.Router.add_peer d ~peer_asn:(Bgp.Router.asn a) ~peer_node:65001
    ~policy:(Bgp.Policy.make Bgp.Policy.Unrestricted);
  peer_pair a b;
  peer_pair b d;
  List.iter Bgp.Router.start [ a; b; d ];
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  (match Bgp.Router.adj_in_find d ~peer:(asn 65001) (p "100.64.0.0/24") with
  | Some r ->
    Alcotest.(check (list int)) "prepended on the wire" [ 65001; 65001; 65001; 65001 ]
      (path_of r)
  | None -> Alcotest.fail "direct route must arrive");
  match Bgp.Router.best d (p "100.64.0.0/24") with
  | Some r -> Alcotest.(check (list int)) "transit path wins" [ 65002; 65001 ] (path_of r)
  | None -> Alcotest.fail "d must route"

let test_stats_counted () =
  let h = make_harness () in
  let a = add_router h 65001 and b = add_router h 65002 in
  peer_pair a b;
  List.iter Bgp.Router.start [ a; b ];
  run h;
  Bgp.Router.originate a (p "100.64.0.0/24");
  run h;
  let sa = Bgp.Router.stats a and sb = Bgp.Router.stats b in
  Alcotest.(check bool) "a sent updates" true (sa.Bgp.Router.msgs_out > 0);
  Alcotest.(check bool) "b received updates" true (sb.Bgp.Router.msgs_in > 0);
  Alcotest.(check bool) "b changed best" true (sb.Bgp.Router.best_changes > 0)

let suite =
  [
    Alcotest.test_case "session establishment" `Quick test_session_establishment;
    Alcotest.test_case "one-sided open" `Quick test_one_sided_open;
    Alcotest.test_case "propagation + FIB hook" `Quick test_propagation_and_fib_hook;
    Alcotest.test_case "initial table sync" `Quick test_initial_table_sync;
    Alcotest.test_case "withdraw propagates" `Quick test_withdraw_propagates;
    Alcotest.test_case "transit path" `Quick test_transit_path;
    Alcotest.test_case "loop suppression" `Quick test_loop_suppression_on_export;
    Alcotest.test_case "valley-free transit" `Quick test_valley_free_transit;
    Alcotest.test_case "local-pref beats length" `Quick test_local_pref_beats_path_length;
    Alcotest.test_case "session down flushes" `Quick test_session_down_flushes;
    Alcotest.test_case "re-establish resyncs" `Quick test_reestablish_resyncs;
    Alcotest.test_case "export prepending" `Quick test_export_prepending;
    Alcotest.test_case "stats counted" `Quick test_stats_counted;
  ]
