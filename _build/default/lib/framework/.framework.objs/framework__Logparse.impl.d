lib/framework/logparse.ml: Engine Fmt Hashtbl Int List Net Option String
