(* Restartable one-shot timer on top of the scheduler.

   This is the shape both BGP MRAI timers and the controller's delayed
   recomputation need: arm, coalesce while armed, cancel, fire once. *)

type t = {
  sim : Sim.t;
  name : string;
  category : string;
  callback : unit -> unit;
  mutable armed : Sim.handle option;
  mutable fires : int;
}

let create ?(category = "timer") sim ~name ~callback =
  { sim; name; category; callback; armed = None; fires = 0 }

let is_armed t =
  match t.armed with
  | None -> false
  | Some h -> not (Sim.cancelled h)

let cancel t =
  (match t.armed with Some h -> Sim.cancel h | None -> ());
  t.armed <- None

let fire t () =
  t.armed <- None;
  t.fires <- t.fires + 1;
  t.callback ()

let start t span =
  cancel t;
  t.armed <- Some (Sim.schedule_after ~category:t.category t.sim span (fire t))

let start_if_idle t span = if not (is_armed t) then start t span

let fires t = t.fires

let name t = t.name
