(* IPv4 addresses and prefixes.

   Addresses are int32 in network order semantics (bit 31 = first octet's
   MSB); all arithmetic goes through Int32 logical ops so the full unsigned
   range works. *)

type addr = int32

type prefix = { network : int32; len : int }

let compare_addr a b =
  (* unsigned comparison *)
  Int32.unsigned_compare a b

let equal_addr = Int32.equal

let addr_of_int32 i = i

let addr_to_int32 a = a

let addr_of_octets a b c d =
  if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255 then
    invalid_arg "Ipv4.addr_of_octets";
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let octets a =
  let byte shift = Int32.to_int (Int32.logand (Int32.shift_right_logical a shift) 0xFFl) in
  (byte 24, byte 16, byte 8, byte 0)

let pp_addr ppf a =
  let o1, o2, o3, o4 = octets a in
  Fmt.pf ppf "%d.%d.%d.%d" o1 o2 o3 o4

let addr_to_string a = Fmt.str "%a" pp_addr a

let addr_of_string s =
  match String.split_on_char '.' (String.trim s) with
  | [ a; b; c; d ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
    | Some a, Some b, Some c, Some d
      when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255 && d >= 0 && d <= 255
      -> Some (addr_of_octets a b c d)
    | _ -> None)
  | _ -> None

let mask_of_len len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let apply_mask addr len = Int32.logand addr (mask_of_len len)

let prefix addr len =
  if len < 0 || len > 32 then invalid_arg (Fmt.str "Ipv4.prefix: bad length %d" len);
  { network = apply_mask addr len; len }

let prefix_len p = p.len

let prefix_network p = p.network

let compare_prefix p q =
  let c = Int32.unsigned_compare p.network q.network in
  if c <> 0 then c else Int.compare p.len q.len

let equal_prefix p q = compare_prefix p q = 0

let hash_prefix p = Hashtbl.hash (p.network, p.len)

let mem addr p = Int32.equal (apply_mask addr p.len) p.network

let subsumes ~outer ~inner =
  outer.len <= inner.len && Int32.equal (apply_mask inner.network outer.len) outer.network

let pp_prefix ppf p = Fmt.pf ppf "%a/%d" pp_addr p.network p.len

let prefix_to_string p = Fmt.str "%a" pp_prefix p

let prefix_of_string s =
  match String.split_on_char '/' (String.trim s) with
  | [ addr; len ] -> (
    match (addr_of_string addr, int_of_string_opt len) with
    | Some a, Some l when l >= 0 && l <= 32 -> Some (prefix a l)
    | _ -> None)
  | [ addr ] -> Option.map (fun a -> prefix a 32) (addr_of_string addr)
  | _ -> None

let host_count p = if p.len >= 31 then 1 else (1 lsl (32 - p.len)) - 2

let nth_host p n =
  let span = Int32.shift_left 1l (32 - p.len) in
  if n < 0 || (p.len < 32 && Int32.unsigned_compare (Int32.of_int n) span >= 0) then
    invalid_arg "Ipv4.nth_host";
  Int32.add p.network (Int32.of_int n)

let subnets p ~len =
  if len < p.len || len > 32 then invalid_arg "Ipv4.subnets";
  let count = 1 lsl (len - p.len) in
  let step = Int32.shift_left 1l (32 - len) in
  List.init count (fun i ->
      { network = Int32.add p.network (Int32.mul (Int32.of_int i) step); len })

(* Sequential allocator of equal-sized subnets from a pool — the automatic
   IP assignment the framework performs for AS loopbacks, link nets and
   originated prefixes. *)
module Allocator = struct
  type t = { pool : prefix; len : int; mutable next : int; capacity : int }

  let create ~(pool : prefix) ~len =
    if len < pool.len || len > 32 then invalid_arg "Ipv4.Allocator.create";
    { pool; len; next = 0; capacity = 1 lsl (len - pool.len) }

  let allocated t = t.next

  let capacity t = t.capacity

  let next t =
    if t.next >= t.capacity then failwith "Ipv4.Allocator: pool exhausted";
    let step = Int32.shift_left 1l (32 - t.len) in
    let network = Int32.add t.pool.network (Int32.mul (Int32.of_int t.next) step) in
    t.next <- t.next + 1;
    { network; len = t.len }
end

module Prefix_map = Map.Make (struct
  type t = prefix

  let compare = compare_prefix
end)

module Prefix_set = Set.Make (struct
  type t = prefix

  let compare = compare_prefix
end)
