examples/placement_study.ml: Fmt Framework List
