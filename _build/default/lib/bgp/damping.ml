(* Route-flap damping (RFC 2439).

   Each (peer, prefix) accumulates a penalty on flap events; the penalty
   decays exponentially with a configured half-life.  When it crosses the
   suppress threshold the route is excluded from the decision process
   until it decays below the reuse threshold (capped by the maximum
   suppression time).  Damping is the classic counterpart to the paper's
   controller-side delayed recomputation: both rate-limit instability,
   one distributed and per-peer, one centralized. *)

type config = {
  half_life : Engine.Time.span;
  suppress_threshold : float;
  reuse_threshold : float;
  max_suppress : Engine.Time.span;
  withdrawal_penalty : float;
  readvertisement_penalty : float;
  attribute_change_penalty : float;
}

(* Cisco-style defaults. *)
let default_config =
  {
    half_life = Engine.Time.sec (15 * 60);
    suppress_threshold = 2000.0;
    reuse_threshold = 750.0;
    max_suppress = Engine.Time.sec (60 * 60);
    withdrawal_penalty = 1000.0;
    readvertisement_penalty = 1000.0;
    attribute_change_penalty = 500.0;
  }

type event = Withdrawal | Readvertisement | Attribute_change

type entry = {
  mutable penalty : float; (* as of [stamped_at] *)
  mutable stamped_at : Engine.Time.t;
  mutable suppressed_since : Engine.Time.t option;
}

type t = {
  config : config;
  entries : (Net.Asn.t * Net.Ipv4.prefix, entry) Hashtbl.t;
  mutable suppressions : int;
  mutable reuses : int;
}

let create config = { config; entries = Hashtbl.create 32; suppressions = 0; reuses = 0 }

let config t = t.config

let suppressions t = t.suppressions

let reuses t = t.reuses

let key peer prefix = (peer, prefix)

let decay config penalty ~from ~now =
  let dt = Engine.Time.to_sec_f (Engine.Time.diff now from) in
  let hl = Engine.Time.to_sec_f config.half_life in
  if dt <= 0.0 || hl <= 0.0 then penalty else penalty *. (0.5 ** (dt /. hl))

let current_penalty t ~peer ~prefix ~now =
  match Hashtbl.find_opt t.entries (key peer prefix) with
  | None -> 0.0
  | Some e -> decay t.config e.penalty ~from:e.stamped_at ~now

let penalty_of = function
  | Withdrawal -> fun c -> c.withdrawal_penalty
  | Readvertisement -> fun c -> c.readvertisement_penalty
  | Attribute_change -> fun c -> c.attribute_change_penalty

(* Time until a penalty decays to the reuse threshold. *)
let span_to_reuse config penalty =
  if penalty <= config.reuse_threshold then Engine.Time.span_zero
  else begin
    let hl = Engine.Time.to_sec_f config.half_life in
    let seconds = hl *. (Float.log (penalty /. config.reuse_threshold) /. Float.log 2.0) in
    Engine.Time.of_sec_f seconds
  end

(* Record a flap event.  Returns the (possibly new) suppression state and,
   when suppressed, the absolute time at which the route becomes reusable
   — the caller schedules a re-decision there. *)
let record t ~peer ~prefix ~now event =
  let e =
    match Hashtbl.find_opt t.entries (key peer prefix) with
    | Some e -> e
    | None ->
      let e = { penalty = 0.0; stamped_at = now; suppressed_since = None } in
      Hashtbl.replace t.entries (key peer prefix) e;
      e
  in
  let decayed = decay t.config e.penalty ~from:e.stamped_at ~now in
  e.penalty <- decayed +. penalty_of event t.config;
  e.stamped_at <- now;
  if e.penalty >= t.config.suppress_threshold && e.suppressed_since = None then begin
    e.suppressed_since <- Some now;
    t.suppressions <- t.suppressions + 1
  end;
  match e.suppressed_since with
  | None -> `Ok
  | Some since ->
    let natural = Engine.Time.add now (span_to_reuse t.config e.penalty) in
    let cap = Engine.Time.add since t.config.max_suppress in
    `Suppressed_until (Engine.Time.min natural cap)

(* Is the route currently suppressed?  Transitions back to reusable as a
   side effect once the penalty has decayed (or the cap has passed). *)
let is_suppressed t ~peer ~prefix ~now =
  match Hashtbl.find_opt t.entries (key peer prefix) with
  | None -> false
  | Some e -> (
    match e.suppressed_since with
    | None -> false
    | Some since ->
      let decayed = decay t.config e.penalty ~from:e.stamped_at ~now in
      let capped =
        Engine.Time.(Engine.Time.add since t.config.max_suppress <= now)
      in
      if decayed <= t.config.reuse_threshold || capped then begin
        e.suppressed_since <- None;
        e.penalty <- decayed;
        e.stamped_at <- now;
        t.reuses <- t.reuses + 1;
        false
      end
      else true)

let entry_count t = Hashtbl.length t.entries

let pp_config ppf c =
  Fmt.pf ppf "half-life=%a suppress=%.0f reuse=%.0f max=%a" Engine.Time.pp_span c.half_life
    c.suppress_threshold c.reuse_threshold Engine.Time.pp_span c.max_suppress
