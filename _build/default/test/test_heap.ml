(* Engine.Heap: ordering, growth, and a heapsort property. *)

open Engine

let make () = Heap.create ~dummy:0 Int.compare

let test_empty () =
  let h = make () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_ordering () =
  let h = make () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Heap.length h);
  let drained = List.init 7 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_growth () =
  let h = Heap.create ~capacity:2 ~dummy:0 Int.compare in
  for i = 1000 downto 1 do
    Heap.push h i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Heap.peek h)

let test_clear () =
  let h = make () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Heap.pop h)

let prop_heapsort =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let h = make () in
      List.iter (Heap.push h) l;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort Int.compare l)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "min ordering" `Quick test_ordering;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_heapsort;
  ]
