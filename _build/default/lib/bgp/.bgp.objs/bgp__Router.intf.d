lib/bgp/router.mli: Attrs Community Config Damping Engine Message Net Policy Route
