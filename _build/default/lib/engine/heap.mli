(** Array-backed binary min-heap with an explicit comparison function. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> ('a -> 'a -> int) -> 'a t
(** [create ~dummy cmp] is an empty heap ordered by [cmp].  [dummy] fills
    unused slots (it is never returned). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Unordered snapshot of the heap contents (testing aid). *)
