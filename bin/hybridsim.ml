(* hybridsim — command-line front end to the hybrid BGP-SDN emulation
   framework.

     hybridsim fig2 -n 16 --runs 10        reproduce the paper's Fig. 2
     hybridsim run --topo clique:16 --sdn 8 --event withdraw
     hybridsim topo --kind ba:30:2 --dot topo.dot
     hybridsim dot -n 8 --sdn 4            component diagram (Fig. 1)
     hybridsim demo                         sub-cluster resilience demo *)

open Cmdliner

let ( let* ) r f = Result.bind r f

(* --- Topology specification parsing: "clique:16", "er:20:0.2", ... ----- *)

let parse_topo ~seed s =
  let rng = Engine.Rng.create seed in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "clique"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 2 -> Ok (Topology.Artificial.clique n)
    | _ -> Error "clique:N with N >= 2")
  | [ "ring"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 3 -> Ok (Topology.Artificial.ring n)
    | _ -> Error "ring:N with N >= 3")
  | [ "line"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 2 -> Ok (Topology.Artificial.line n)
    | _ -> Error "line:N with N >= 2")
  | [ "star"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 2 -> Ok (Topology.Artificial.star n)
    | _ -> Error "star:N with N >= 2")
  | [ "er"; n; p ] -> (
    match (int_of_string_opt n, float_of_string_opt p) with
    | Some n, Some p when n >= 2 && p >= 0.0 && p <= 1.0 ->
      Ok (Topology.Random_models.erdos_renyi rng ~n ~p)
    | _ -> Error "er:N:P with N >= 2 and P in [0,1]")
  | [ "ba"; n; m ] -> (
    match (int_of_string_opt n, int_of_string_opt m) with
    | Some n, Some m when n > m && m >= 1 -> Ok (Topology.Random_models.barabasi_albert rng ~n ~m)
    | _ -> Error "ba:N:M with N > M >= 1")
  | [ "waxman"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 2 -> Ok (Topology.Random_models.waxman rng ~n)
    | _ -> Error "waxman:N with N >= 2")
  | [ "glp"; n; m ] -> (
    match (int_of_string_opt n, int_of_string_opt m) with
    | Some n, Some m when n > m && m >= 1 && n >= 3 ->
      Ok (Topology.Random_models.glp rng ~n ~m)
    | _ -> Error "glp:N:M with N > M >= 1, N >= 3")
  | [ "caida" ] -> Ok (Topology.Caida.generate rng)
  | [ "iplane" ] -> Ok (Topology.Iplane.generate rng)
  | [ "caida-file"; path ] ->
    Result.map_error
      (fun e -> Fmt.str "%a" Topology.Caida.pp_parse_error e)
      (Topology.Caida.parse_file path)
  | [ "iplane-file"; path ] ->
    Result.map_error
      (fun e -> Fmt.str "%a" Topology.Iplane.pp_parse_error e)
      (Topology.Iplane.parse_file path)
  | _ ->
    Error
      "unknown topology; use clique:N, ring:N, line:N, star:N, er:N:P, ba:N:M, glp:N:M, \
       waxman:N, caida, iplane, caida-file:PATH, iplane-file:PATH"

let with_sdn_tail spec k =
  if k = 0 then Ok spec
  else if k > Topology.Spec.node_count spec then Error "--sdn exceeds topology size"
  else begin
    let asns = Topology.Spec.asns spec in
    let n = List.length asns in
    Ok (Topology.Spec.with_sdn spec (List.filteri (fun i _ -> i >= n - k) asns))
  end

(* --- Common options ------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for sweep execution: each (x, seed) run executes on its own domain \
           and results are collected in deterministic order, so output is identical for any \
           N. 0 (default) picks the recommended domain count: one per core, capped at 8 \
           unless the $(b,HYBRIDSIM_JOBS_CAP) environment variable overrides the cap; 1 \
           runs sequentially.  Distinct from $(b,--shards), which splits ONE run across \
           domains.")

(* 0 = auto.  Sweeps accept any positive value; domains beyond the core
   count just time-share. *)
let resolve_jobs jobs =
  if jobs < 0 then Error "--jobs must be >= 0 (0 = auto-select the recommended domain count)"
  else Ok (if jobs = 0 then Engine.Pool.recommended_jobs () else jobs)

let with_optional_pool jobs f =
  if jobs <= 1 then f None else Engine.Pool.with_pool ~jobs (fun pool -> f (Some pool))

let mrai_arg =
  Arg.(
    value
    & opt int 30
    & info [ "mrai" ] ~docv:"SECONDS" ~doc:"eBGP MinRouteAdvertisementInterval.")

let config_of_mrai mrai =
  Framework.Config.with_mrai Framework.Config.default (Engine.Time.sec mrai)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"PATH"
        ~doc:
          "Write a metrics export: .prom/.txt for Prometheus text, .csv for CSV, anything \
           else for a JSONL timeline.")

let metrics_interval_arg =
  let positive_float =
    let parse s =
      match float_of_string_opt s with
      | Some v when v > 0.0 -> Ok v
      | _ -> Error (`Msg (Fmt.str "expected a positive number of seconds, got %S" s))
    in
    Arg.conv (parse, Fmt.float)
  in
  Arg.(
    value
    & opt positive_float 1.0
    & info [ "metrics-interval" ] ~docv:"SECONDS"
        ~doc:"Sampling interval (simulated seconds) for the metrics timeline.")

(* Start a telemetry sink on the experiment's sim (None when no output was
   requested). *)
let telemetry_of exp metrics_out interval =
  Option.map
    (fun path ->
      Framework.Telemetry.create
        ~interval:(Engine.Time.of_sec_f interval)
        ~sim:(Framework.Experiment.sim exp) ~path ())
    metrics_out

let finish_telemetry tele =
  Option.iter
    (fun t ->
      match Framework.Telemetry.finish t with
      | Ok n -> Fmt.pr "metrics: %d snapshots written@." n
      | Error msg -> Fmt.epr "metrics: write failed: %s@." msg)
    tele

(* For runs that only expose a final snapshot (no live sim access). *)
let write_snapshot path snap =
  let content =
    match Framework.Telemetry.format_of_path path with
    | Framework.Telemetry.Prometheus -> Engine.Metrics.to_prometheus snap
    | Framework.Telemetry.Jsonl -> Engine.Metrics.to_jsonl snap
    | Framework.Telemetry.Csv -> Engine.Metrics.to_csv snap
  in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  Fmt.pr "metrics: final snapshot written to %s@." path

(* --- fig2 ----------------------------------------------------------------- *)

let fig2_cmd =
  let run n runs seed mrai jobs =
    match resolve_jobs jobs with
    | Error msg -> `Error (false, msg)
    | Ok jobs ->
      let config = config_of_mrai mrai in
      let s =
        with_optional_pool jobs (fun pool ->
            Framework.Experiments.fig2_withdrawal ?pool ~n ~runs ~seed ~config ())
      in
      Fmt.pr "%a@.@.%s@." Framework.Experiments.pp_series s
        (Framework.Visualize.series_to_ascii s);
      let intercept, slope, r2 = Framework.Experiments.median_trend s in
      Fmt.pr "linear fit of medians: y = %.2f %+.2f*x  r^2=%.3f@." intercept slope r2;
      `Ok ()
  in
  let n = Arg.(value & opt int 16 & info [ "n"; "size" ] ~docv:"N" ~doc:"Clique size.") in
  let runs = Arg.(value & opt int 10 & info [ "runs" ] ~docv:"R" ~doc:"Runs per point.") in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Reproduce Fig. 2: withdrawal convergence vs SDN fraction.")
    Term.(ret (const run $ n $ runs $ seed_arg $ mrai_arg $ jobs_arg))

(* --- sweep ---------------------------------------------------------------- *)

let sweep_cmd =
  let run kind n runs seed mrai jobs verify csv =
    let result =
      let* jobs = resolve_jobs jobs in
      let* build =
        match String.lowercase_ascii (String.trim kind) with
        | "fig2" | "withdraw" ->
          Ok (fun ?pool () ->
              Framework.Experiments.fig2_withdrawal ?pool ~n ~runs ~seed
                ~config:(config_of_mrai mrai) ())
        | "announce" ->
          Ok (fun ?pool () ->
              Framework.Experiments.announcement_sweep ?pool ~n ~runs ~seed
                ~config:(config_of_mrai mrai) ())
        | "failover" ->
          Ok (fun ?pool () ->
              Framework.Experiments.failover_sweep ?pool ~n ~runs ~seed
                ~config:(config_of_mrai mrai) ())
        | "scaling" ->
          Ok (fun ?pool () ->
              Framework.Experiments.scaling_sweep ?pool ~runs ~seed
                ~config:(config_of_mrai mrai) ())
        | "placement" | "placement:top-degree" ->
          Ok (fun ?pool () ->
              Framework.Experiments.placement_sweep ?pool ~runs ~seed
                ~config:(config_of_mrai mrai) ~placement:Framework.Experiments.Top_degree ())
        | "placement:random" ->
          Ok (fun ?pool () ->
              Framework.Experiments.placement_sweep ?pool ~runs ~seed
                ~config:(config_of_mrai mrai) ~placement:Framework.Experiments.Random_choice
                ())
        | "placement:stubs" ->
          Ok (fun ?pool () ->
              Framework.Experiments.placement_sweep ?pool ~runs ~seed
                ~config:(config_of_mrai mrai) ~placement:Framework.Experiments.Stubs_first ())
        | k ->
          Error
            (Fmt.str
               "unknown sweep %S (fig2|announce|failover|scaling|placement[:top-degree| \
                :random|:stubs])"
               k)
      in
      let t0 = Unix.gettimeofday () in
      let s = with_optional_pool jobs (fun pool -> build ?pool ()) in
      let wall = Unix.gettimeofday () -. t0 in
      Fmt.pr "%a@.@.%s@." Framework.Experiments.pp_series s
        (Framework.Visualize.series_to_ascii s);
      Fmt.pr "jobs: %d  wall: %.2f s@." jobs wall;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Framework.Experiments.series_to_csv s);
          close_out oc;
          Fmt.pr "csv written to %s@." path)
        csv;
      if verify then begin
        (* the parallel-vs-sequential differential: rerun on jobs=1 and
           require deep structural equality *)
        let vjobs = max 2 jobs in
        let seq = build () in
        let par =
          if jobs > 1 then s
          else Engine.Pool.with_pool ~jobs:vjobs (fun pool -> build ~pool ())
        in
        if Framework.Experiments.equal_series seq par then begin
          Fmt.pr "deterministic: jobs=%d result identical to sequential@." vjobs;
          Ok ()
        end
        else Error (Fmt.str "parallel (jobs=%d) result differs from sequential run" vjobs)
      end
      else Ok ()
    in
    match result with Ok () -> `Ok () | Error msg -> `Error (false, msg)
  in
  let kind =
    Arg.(
      value
      & opt string "fig2"
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"fig2, announce, failover, scaling, or placement[:top-degree|:random|:stubs].")
  in
  let n = Arg.(value & opt int 16 & info [ "n"; "size" ] ~docv:"N" ~doc:"Clique size.") in
  let runs = Arg.(value & opt int 10 & info [ "runs" ] ~docv:"R" ~doc:"Runs per point.") in
  let verify =
    Arg.(
      value
      & flag
      & info [ "verify" ]
          ~doc:
            "Differential mode: also run the sweep sequentially and fail unless the \
             parallel result is structurally identical.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"PATH" ~doc:"Write per-run results as CSV.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a full experiment sweep, optionally across a pool of worker domains.")
    Term.(
      ret (const run $ kind $ n $ runs $ seed_arg $ mrai_arg $ jobs_arg $ verify $ csv))

(* --- run ------------------------------------------------------------------ *)

let run_cmd =
  let run topo sdn event seed mrai shards verify metrics_out metrics_interval =
    let result =
      let* spec = parse_topo ~seed topo in
      let* spec = with_sdn_tail spec sdn in
      let config = config_of_mrai mrai in
      match String.lowercase_ascii event with
      | _ when shards < 1 -> Error "--shards must be >= 1"
      | ("withdraw" | "announce") as event when shards > 1 || verify ->
        if metrics_out <> None then
          Error "--metrics-out is not supported with --shards/--verify"
        else begin
          let origin = List.hd (Topology.Spec.asns spec) in
          let plan = Framework.Addressing.plan spec in
          let prefix = plan.Framework.Addressing.origin_prefix origin in
          let phases =
            if event = "announce" then
              [
                {
                  Framework.Sharding.commands =
                    [ Framework.Sharding.Originate (origin, prefix) ];
                  measured = Some prefix;
                };
              ]
            else
              [
                {
                  Framework.Sharding.commands =
                    [ Framework.Sharding.Originate (origin, prefix) ];
                  measured = None;
                };
                {
                  Framework.Sharding.commands =
                    [ Framework.Sharding.Withdraw (origin, prefix) ];
                  measured = Some prefix;
                };
              ]
          in
          let shard_run n =
            Framework.Sharding.run ~shards:n ~clock:Unix.gettimeofday ~config ~seed
              ~phases spec
          in
          let r = shard_run shards in
          Fmt.pr "topology: %s (%d ASes, %d SDN)@." (Topology.Spec.title spec)
            (Topology.Spec.node_count spec)
            (List.length (Topology.Spec.sdn_asns spec));
          Fmt.pr "event: %s at %a@." event Net.Asn.pp origin;
          (match List.rev r.Framework.Sharding.phases with
          | { Framework.Sharding.measurement = Some m; _ } :: _ ->
            Fmt.pr "%a@." Framework.Convergence.pp_measurement m
          | _ -> ());
          let st = r.Framework.Sharding.stats in
          Fmt.pr "shards: %d (sizes %a), %d cut links, %d epochs@." shards
            Fmt.(array ~sep:(any "/") int)
            r.Framework.Sharding.partition_sizes r.Framework.Sharding.cut_links
            st.Engine.Shard.epochs;
          if verify then
            if Framework.Sharding.equal_result r (shard_run 1) then begin
              Fmt.pr "verify: shards=%d result identical to shards=1@." shards;
              Ok ()
            end
            else
              Error (Fmt.str "verify FAILED: shards=%d result differs from shards=1" shards)
          else Ok ()
        end
      | "failover" when shards > 1 || verify ->
        Error "--shards/--verify support withdraw and announce events only"
      | "withdraw" | "announce" ->
        let exp = Framework.Experiment.create ~config ~seed spec in
        let tele = telemetry_of exp metrics_out metrics_interval in
        let origin = List.hd (Topology.Spec.asns spec) in
        let measured =
          if event = "announce" then Core.measure_announcement exp origin
          else Core.measure_withdrawal exp origin
        in
        Fmt.pr "topology: %s (%d ASes, %d SDN)@." (Topology.Spec.title spec)
          (Topology.Spec.node_count spec)
          (List.length (Topology.Spec.sdn_asns spec));
        Fmt.pr "event: %s at %a@." event Net.Asn.pp origin;
        Fmt.pr "%a@." Framework.Convergence.pp_measurement measured;
        Fmt.pr "convergence: %.2f s@." (Framework.Experiment.convergence_seconds measured);
        finish_telemetry tele;
        Ok ()
      | "failover" ->
        let n = Topology.Spec.node_count spec in
        let r = Framework.Experiments.failover_run ~n ~sdn ~seed ~config () in
        Fmt.pr "failover on %d-clique + backup chain, %d SDN members@." n sdn;
        Fmt.pr "control-plane convergence: %.2f s@." r.Framework.Experiments.seconds;
        Fmt.pr "data-plane restoration: mean %.2f s, max %.2f s@."
          r.Framework.Experiments.restore_mean r.Framework.Experiments.restore_max;
        Option.iter
          (fun path -> write_snapshot path r.Framework.Experiments.metrics)
          metrics_out;
        Ok ()
      | e -> Error (Fmt.str "unknown event %S (withdraw|announce|failover)" e)
    in
    match result with
    | Ok () -> `Ok ()
    | Error msg -> `Error (false, msg)
  in
  let topo =
    Arg.(value & opt string "clique:16" & info [ "topo" ] ~docv:"SPEC" ~doc:"Topology spec.")
  in
  let sdn = Arg.(value & opt int 0 & info [ "sdn" ] ~docv:"K" ~doc:"SDN member count.") in
  let event =
    Arg.(value & opt string "withdraw" & info [ "event" ] ~docv:"EVENT"
           ~doc:"withdraw, announce or failover.")
  in
  let shards =
    Arg.(
      value
      & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the run across N domains advancing in lockstep epochs \
             (withdraw/announce only); the result is bit-identical to $(b,--shards) 1.")
  in
  let verify =
    Arg.(
      value
      & flag
      & info [ "verify" ]
          ~doc:
            "Differential check: rerun at $(b,--shards) 1 and fail unless the sharded \
             result is identical.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a single convergence experiment.")
    Term.(
      ret
        (const run $ topo $ sdn $ event $ seed_arg $ mrai_arg $ shards $ verify
        $ metrics_out_arg $ metrics_interval_arg))

(* --- topo ----------------------------------------------------------------- *)

let topo_cmd =
  let run kind seed dot_out caida_out =
    match parse_topo ~seed kind with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
      Fmt.pr "%s: %d ASes, %d links, connected=%b, valid=%b@." (Topology.Spec.title spec)
        (Topology.Spec.node_count spec) (Topology.Spec.link_count spec)
        (Topology.Spec.is_connected spec) (Topology.Spec.is_valid spec);
      let degrees =
        List.map (fun a -> List.length (Topology.Spec.neighbors spec a)) (Topology.Spec.asns spec)
      in
      let fdeg = List.map float_of_int degrees in
      Fmt.pr "degree: min=%.0f median=%.0f max=%.0f@."
        (List.fold_left Float.min infinity fdeg)
        (Engine.Stats.median fdeg)
        (List.fold_left Float.max 0.0 fdeg);
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Framework.Visualize.spec_to_dot ~with_infrastructure:false spec);
          close_out oc;
          Fmt.pr "wrote %s@." path)
        dot_out;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Topology.Caida.render spec);
          close_out oc;
          Fmt.pr "wrote %s (CAIDA serial-1)@." path)
        caida_out;
      `Ok ()
  in
  let kind =
    Arg.(value & opt string "caida" & info [ "kind" ] ~docv:"SPEC" ~doc:"Topology spec.")
  in
  let dot_out =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PATH" ~doc:"Write Graphviz dot.")
  in
  let caida_out =
    Arg.(value & opt (some string) None
         & info [ "export-caida" ] ~docv:"PATH" ~doc:"Write CAIDA serial-1 text.")
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Generate or load a topology and describe it.")
    Term.(ret (const run $ kind $ seed_arg $ dot_out $ caida_out))

(* --- dot ------------------------------------------------------------------- *)

let dot_cmd =
  let run n sdn =
    match with_sdn_tail (Topology.Artificial.clique n) sdn with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
      print_string (Framework.Visualize.spec_to_dot spec);
      `Ok ()
  in
  let n = Arg.(value & opt int 8 & info [ "n"; "size" ] ~docv:"N" ~doc:"Clique size.") in
  let sdn = Arg.(value & opt int 4 & info [ "sdn" ] ~docv:"K" ~doc:"SDN member count.") in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the experiment component diagram (Fig. 1 equivalent) as dot.")
    Term.(ret (const run $ n $ sdn))

(* --- scenario --------------------------------------------------------------- *)

let scenario_cmd =
  let run topo sdn file seed mrai dump timeline show_state metrics_out metrics_interval =
    let result =
      let* spec = parse_topo ~seed topo in
      let* spec = with_sdn_tail spec sdn in
      let* scenario = Framework.Scenario.parse_file file in
      let config = config_of_mrai mrai in
      let exp = Framework.Experiment.create ~config ~seed spec in
      let tele = telemetry_of exp metrics_out metrics_interval in
      Fmt.pr "topology %s (%d ASes, %d SDN); scenario %s (%d steps)@."
        (Topology.Spec.title spec) (Topology.Spec.node_count spec)
        (List.length (Topology.Spec.sdn_asns spec))
        (Framework.Scenario.title scenario)
        (List.length (Framework.Scenario.steps scenario));
      let log = Framework.Scenario.run exp scenario in
      List.iter
        (fun (time, action) ->
          Fmt.pr "  %a %a@." Engine.Time.pp time Framework.Scenario.pp_action action)
        log;
      let network = Framework.Experiment.network exp in
      let collector = Framework.Network.collector network in
      Fmt.pr "settled at %a; collector saw %d updates@." Engine.Time.pp
        (Framework.Experiment.now exp)
        (Bgp.Collector.event_count collector);
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Bgp.Collector.dump collector);
          close_out oc;
          Fmt.pr "collector dump written to %s@." path)
        dump;
      if show_state then print_string (Framework.Looking_glass.network_state network);
      (match timeline with
      | Some prefix_str -> (
        match Net.Ipv4.prefix_of_string prefix_str with
        | None -> Fmt.pr "bad --timeline prefix %S@." prefix_str
        | Some prefix ->
          let entries =
            Framework.Logparse.of_trace (Engine.Sim.trace (Framework.Experiment.sim exp))
          in
          print_string (Framework.Visualize.timeline entries prefix))
      | None -> ());
      finish_telemetry tele;
      Ok ()
    in
    match result with Ok () -> `Ok () | Error msg -> `Error (false, msg)
  in
  let topo =
    Arg.(value & opt string "clique:8" & info [ "topo" ] ~docv:"SPEC" ~doc:"Topology spec.")
  in
  let sdn = Arg.(value & opt int 0 & info [ "sdn" ] ~docv:"K" ~doc:"SDN member count.") in
  let file =
    Arg.(required & opt (some file) None & info [ "file" ] ~docv:"PATH" ~doc:"Scenario file.")
  in
  let dump =
    Arg.(value & opt (some string) None
         & info [ "dump-collector" ] ~docv:"PATH" ~doc:"Write the collector's update dump.")
  in
  let timeline =
    Arg.(value & opt (some string) None
         & info [ "timeline" ] ~docv:"PREFIX" ~doc:"Print the route-change timeline of a prefix.")
  in
  let show_state =
    Arg.(value & flag & info [ "show-state" ] ~doc:"Dump the final looking-glass state.")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Replay a timed scenario file against a topology.")
    Term.(
      ret
        (const run $ topo $ sdn $ file $ seed_arg $ mrai_arg $ dump $ timeline $ show_state
        $ metrics_out_arg $ metrics_interval_arg))

(* --- metrics ----------------------------------------------------------------- *)

let metrics_cmd =
  let run check =
    match check with
    | None -> `Error (true, "nothing to do; use --check FILE")
    | Some path -> (
      match Framework.Telemetry.validate_file path with
      | Ok n ->
        Fmt.pr "%s: OK — %d entries (%s format)@." path n
          (Framework.Telemetry.format_to_string (Framework.Telemetry.format_of_path path));
        `Ok ()
      | Error msg -> `Error (false, Fmt.str "%s: %s" path msg))
  in
  let check =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"PATH"
          ~doc:"Validate a metrics export (format inferred from the extension).")
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Inspect and validate metrics export files.")
    Term.(ret (const run $ check))

(* --- trace ------------------------------------------------------------------- *)

(* Chrome trace-event files are a single JSON object with a "traceEvents"
   array; JSONL exports are one object per line.  Both are checked with
   the same self-contained JSON validator the metrics formats use. *)
let validate_trace_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let is_jsonl = Filename.check_suffix (String.lowercase_ascii path) ".jsonl" in
  if is_jsonl then begin
    let lines =
      String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
    in
    let rec go i = function
      | [] -> Ok (List.length lines)
      | l :: rest ->
        if Framework.Telemetry.json_valid (String.trim l) then go (i + 1) rest
        else Error (Fmt.str "line %d: invalid JSON" i)
    in
    go 1 lines
  end
  else begin
    let body = String.trim text in
    if not (Framework.Telemetry.json_valid body) then Error "invalid JSON"
    else begin
      (* Count the events so "OK" reports something useful. *)
      let occurrences sub =
        let n = String.length sub and total = ref 0 in
        for i = 0 to String.length body - n do
          if String.sub body i n = sub then incr total
        done;
        !total
      in
      if occurrences "\"traceEvents\"" = 0 then
        Error "missing \"traceEvents\" array (not a Chrome trace-event file)"
      else Ok (occurrences "\"ph\":")
    end
  end

let trace_cmd =
  let run topo sdn event seed mrai out critical check =
    match check with
    | Some path -> (
      match validate_trace_file path with
      | Ok n ->
        Fmt.pr "%s: OK — %d events@." path n;
        `Ok ()
      | Error msg -> `Error (false, Fmt.str "%s: %s" path msg))
    | None -> (
      let result =
        let* spec = parse_topo ~seed topo in
        let* spec = with_sdn_tail spec sdn in
        let config =
          { (config_of_mrai mrai) with Framework.Config.causal = Engine.Causal.Full }
        in
        match String.lowercase_ascii event with
        | ("withdraw" | "announce") as event ->
          let exp = Framework.Experiment.create ~config ~seed spec in
          let origin = List.hd (Topology.Spec.asns spec) in
          let measured =
            if event = "announce" then Core.measure_announcement exp origin
            else Core.measure_withdrawal exp origin
          in
          let sim = Framework.Experiment.sim exp in
          let causal = Engine.Sim.causal sim in
          Fmt.pr "topology: %s (%d ASes, %d SDN)@." (Topology.Spec.title spec)
            (Topology.Spec.node_count spec)
            (List.length (Topology.Spec.sdn_asns spec));
          Fmt.pr "event: %s at %a@." event Net.Asn.pp origin;
          Fmt.pr "convergence: %.6f s@."
            (Framework.Experiment.convergence_seconds measured);
          Fmt.pr "trace: id=%d, %d spans@." (Engine.Causal.trace_id causal)
            (Engine.Causal.total causal);
          let prefix = Framework.Experiment.default_prefix exp origin in
          let label = Net.Ipv4.prefix_to_string prefix in
          (match Engine.Causal.convergence_leaf ~label causal with
          | None -> Fmt.pr "no data-plane write found for %s@." label
          | Some leaf ->
            let a = Engine.Causal.attribute causal leaf in
            Fmt.pr "@[<v>%a@]@." Engine.Causal.pp_attribution a;
            if critical then
              List.iter
                (fun s -> Fmt.pr "  %s@." (Engine.Causal.render_line s))
                (Engine.Causal.path_to_root causal leaf));
          Option.iter
            (fun path ->
              let content =
                if Filename.check_suffix (String.lowercase_ascii path) ".jsonl" then
                  Engine.Causal.to_jsonl causal
                else Engine.Causal.to_chrome causal
              in
              let oc = open_out path in
              output_string oc content;
              close_out oc;
              Fmt.pr "trace: written to %s@." path)
            out;
          Ok ()
        | e -> Error (Fmt.str "unknown event %S (withdraw|announce)" e)
      in
      match result with
      | Ok () -> `Ok ()
      | Error msg -> `Error (false, msg))
  in
  let topo =
    Arg.(value & opt string "clique:8" & info [ "topo" ] ~docv:"SPEC" ~doc:"Topology spec.")
  in
  let sdn = Arg.(value & opt int 0 & info [ "sdn" ] ~docv:"K" ~doc:"SDN member count.") in
  let event =
    Arg.(value & opt string "withdraw" & info [ "event" ] ~docv:"EVENT"
           ~doc:"withdraw or announce.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH"
          ~doc:
            "Write the span export: .jsonl for one span per line, anything else for \
             Chrome trace-event JSON (open in Perfetto or chrome://tracing).")
  in
  let critical =
    Arg.(
      value
      & flag
      & info [ "critical-path" ]
          ~doc:"Also print every span on the convergence critical path.")
  in
  let check =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"PATH"
          ~doc:"Validate a trace export (Chrome JSON or .jsonl) instead of running.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a convergence experiment with full causal tracing: per-seed-deterministic \
          span trees from each action down to the last FIB/flow-table write, a \
          critical-path attribution table, and Perfetto-loadable exports.")
    Term.(
      ret (const run $ topo $ sdn $ event $ seed_arg $ mrai_arg $ out $ critical $ check))

(* --- export-quagga ----------------------------------------------------------- *)

let export_quagga_cmd =
  let run topo seed dir =
    match parse_topo ~seed topo with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
      Framework.Quagga_conf.write_configs spec ~dir;
      Fmt.pr "wrote %d bgpd configs to %s/@." (Topology.Spec.node_count spec) dir;
      `Ok ()
  in
  let topo =
    Arg.(value & opt string "clique:8" & info [ "topo" ] ~docv:"SPEC" ~doc:"Topology spec.")
  in
  let dir =
    Arg.(value & opt string "quagga-configs" & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "export-quagga"
       ~doc:"Generate Quagga/FRR bgpd.conf files for a topology (real-testbed export).")
    Term.(ret (const run $ topo $ seed_arg $ dir))

(* --- demo ------------------------------------------------------------------ *)

let demo_cmd =
  let run seed =
    let r = Framework.Experiments.subcluster_resilience ~seed () in
    Fmt.pr "Disjoint sub-cluster demo: two SDN islands bridged by one intra-cluster link,@.";
    Fmt.pr "with legacy ASes providing an alternative path between them.@.@.";
    Fmt.pr "  connectivity before the split:     %b@." r.Framework.Experiments.reachable_before;
    Fmt.pr "  intra-cluster bridge fails...@.";
    Fmt.pr "  connectivity after the split:      %b@."
      r.Framework.Experiments.reachable_after_split;
    Fmt.pr "  traffic crossed the legacy world:  %b@."
      r.Framework.Experiments.used_legacy_bridge;
    Fmt.pr "  bridge recovers...@.";
    Fmt.pr "  connectivity after recovery:       %b@."
      r.Framework.Experiments.reachable_after_recovery
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the disjoint sub-cluster resilience demo.")
    Term.(const run $ seed_arg)

let chaos_cmd =
  let run seed runs no_fallback minimize =
    let fallback = not no_fallback in
    let report = Framework.Chaos.run_campaign ~fallback ~seed ~runs () in
    print_string (Framework.Chaos.render_report report);
    let failing =
      List.filter
        (fun (r : Framework.Chaos.run_result) ->
          r.Framework.Chaos.violations <> [] || not r.Framework.Chaos.quiesced)
        report.Framework.Chaos.results
    in
    if minimize then
      List.iter
        (fun (r : Framework.Chaos.run_result) ->
          let s = Framework.Chaos.minimize ~fallback ~seed r.Framework.Chaos.schedule in
          Fmt.pr "minimal reproducer for run %d: %a@."
            r.Framework.Chaos.schedule.Framework.Chaos.index
            Fmt.(list ~sep:(any "; ") Framework.Chaos.pp_event)
            s.Framework.Chaos.events)
        failing;
    if failing <> [] then exit 1
  in
  let runs =
    Arg.(
      value
      & opt int 25
      & info [ "runs" ] ~docv:"R" ~doc:"Fault schedules to generate and execute.")
  in
  let no_fallback =
    Arg.(
      value
      & flag
      & info [ "no-fallback" ]
          ~doc:
            "Disable the switches' legacy fallback mode (the pre-hardening behavior: \
             members blackhole unknown traffic while the controller is down).")
  in
  let minimize =
    Arg.(
      value
      & flag
      & info [ "minimize" ]
          ~doc:"Greedily shrink each failing schedule to a minimal reproducer.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded chaos campaign: randomized fault schedules against the hybrid \
          clique, with an invariant oracle (no loops, no stale flow rules, session/RIB \
          consistency, checkpoint idempotency) at every quiescent point.  Output is \
          bit-identical for a given seed.")
    Term.(const run $ seed_arg $ runs $ no_fallback $ minimize)

(* --- scale ---------------------------------------------------------------- *)

let scale_cmd =
  let run tier1 tier2 stubs prefixes ks runs seed mrai jobs single shards verify budget wall
      csv =
    let sharded = shards > 1 || verify in
    let result =
      let* jobs = resolve_jobs jobs in
      if tier1 < 1 || tier2 < 1 || stubs < 1 then Error "--tier1/--tier2/--stubs must be >= 1"
      else if prefixes < 1 then Error "--prefixes must be >= 1"
      else if runs < 1 then Error "--runs must be >= 1"
      else if budget < 1 then Error "--budget must be >= 1"
      else if shards < 1 then Error "--shards must be >= 1"
      else if sharded && wall <> None then
        Error "--wall is not supported with --shards/--verify (epochs are wall-clock-free)"
      else if (match wall with Some w -> w <= 0.0 | None -> false) then
        Error "--wall must be positive"
      else Ok jobs
    in
    match result with
    | Error msg -> `Error (false, msg)
    | Ok jobs ->
      let config = config_of_mrai mrai in
      let print_summary (r : Framework.Experiments.scale_result) =
        Fmt.pr "graph:           %d ASes (%d tier1, %d tier2, %d stubs), %d links@."
          r.Framework.Experiments.ases tier1 tier2 stubs r.Framework.Experiments.links;
        Fmt.pr "centralized:     %d top-degree members@." r.Framework.Experiments.sdn_members;
        Fmt.pr "load:            %d prefixes, %d collector updates in %.2f s wall (%.0f upd/s)@."
          r.Framework.Experiments.prefixes r.Framework.Experiments.load_updates
          r.Framework.Experiments.load_seconds r.Framework.Experiments.updates_per_sec;
        Fmt.pr "load settled:    %b (budget %d events)@." r.Framework.Experiments.load_settled
          budget;
        Fmt.pr "tables:          %d Loc-RIB routes, %d Adj-RIB-In routes, %d distinct attrs@."
          r.Framework.Experiments.rib_routes r.Framework.Experiments.adj_in_routes
          r.Framework.Experiments.distinct_attrs;
        Fmt.pr "heap:            %d live words, %d peak words@."
          r.Framework.Experiments.live_words r.Framework.Experiments.peak_words;
        Fmt.pr "withdrawal:      Tdown = %.2f s, %d changes, %d collector updates@."
          r.Framework.Experiments.withdrawal.Framework.Experiments.seconds
          r.Framework.Experiments.withdrawal.Framework.Experiments.changes
          r.Framework.Experiments.withdrawal.Framework.Experiments.collector_updates
      in
      if sharded then begin
        let sdn = match ks with k :: _ -> k | [] -> 0 in
        let shard_run n =
          Framework.Experiments.scale_shard_run ~tier1 ~tier2 ~stubs ~prefixes ~sdn
            ~load_max_events:budget ~shards:n ~clock:Unix.gettimeofday ~seed ~config ()
        in
        let r, sres = shard_run shards in
        print_summary r;
        let st = sres.Framework.Sharding.stats in
        Fmt.pr "shards:          %d (sizes %a), %d cut links, %d epochs, lookahead %a@."
          shards
          Fmt.(array ~sep:(any "/") int)
          sres.Framework.Sharding.partition_sizes sres.Framework.Sharding.cut_links
          st.Engine.Shard.epochs Engine.Time.pp_span st.Engine.Shard.lookahead;
        Fmt.pr "shard events:    executed %a, injected %a@."
          Fmt.(array ~sep:(any "/") int)
          st.Engine.Shard.executed
          Fmt.(array ~sep:(any "/") int)
          st.Engine.Shard.injected;
        Fmt.pr "barrier stall:   %a s@."
          Fmt.(array ~sep:(any "/") (fmt "%.2f"))
          st.Engine.Shard.stall_s;
        if verify then begin
          let _, base = shard_run 1 in
          if Framework.Sharding.equal_result sres base then begin
            Fmt.pr "verify:          shards=%d result identical to shards=1@." shards;
            `Ok ()
          end
          else
            `Error
              ( false,
                Fmt.str "verify FAILED: shards=%d result differs from shards=1" shards )
        end
        else `Ok ()
      end
      else if single then begin
        let sdn = match ks with k :: _ -> k | [] -> 0 in
        let r =
          Framework.Experiments.scale_run ~tier1 ~tier2 ~stubs ~prefixes ~sdn
            ~load_max_events:budget ?phase_wall_s:wall ~clock:Unix.gettimeofday ~seed
            ~config ()
        in
        print_summary r;
        `Ok ()
      end
      else begin
        let s =
          with_optional_pool jobs (fun pool ->
              Framework.Experiments.scale_sweep ?pool ~tier1 ~tier2 ~stubs ~prefixes ~ks
                ~runs ~seed ~config ())
        in
        Fmt.pr "%a@.@.%s@." Framework.Experiments.pp_series s
          (Framework.Visualize.series_to_ascii s);
        let intercept, slope, r2 = Framework.Experiments.median_trend s in
        Fmt.pr "linear fit of medians: y = %.2f %+.2f*x  r^2=%.3f@." intercept slope r2;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Framework.Experiments.series_to_csv s);
            close_out oc;
            Fmt.pr "csv written to %s@." path)
          csv;
        `Ok ()
      end
  in
  let tier1 =
    Arg.(value & opt int 4 & info [ "tier1" ] ~docv:"N" ~doc:"Tier-1 clique size.")
  in
  let tier2 = Arg.(value & opt int 24 & info [ "tier2" ] ~docv:"N" ~doc:"Transit AS count.") in
  let stubs = Arg.(value & opt int 72 & info [ "stubs" ] ~docv:"N" ~doc:"Stub AS count.") in
  let prefixes =
    Arg.(
      value
      & opt int 200
      & info [ "prefixes" ] ~docv:"P"
          ~doc:"Load prefixes, spread round-robin across the stubs before measuring.")
  in
  let ks =
    Arg.(
      value
      & opt (list int) [ 0; 8; 16; 24 ]
      & info [ "ks" ] ~docv:"K,K,..."
          ~doc:"Centralized member counts to sweep (top-degree placement).")
  in
  let runs = Arg.(value & opt int 3 & info [ "runs" ] ~docv:"R" ~doc:"Runs per point.") in
  let single =
    Arg.(
      value
      & flag
      & info [ "single" ]
          ~doc:
            "Run one detailed stress run (first value of $(b,--ks) as the member count) and \
             report throughput, table sizes and heap figures instead of the sweep.")
  in
  let shards =
    Arg.(
      value
      & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition ONE run across N domains advancing in lockstep epochs; the result \
             is bit-identical to $(b,--shards) 1.  Values > 1 imply $(b,--single).  \
             Distinct from $(b,--jobs), which parallelizes across independent sweep runs.")
  in
  let verify =
    Arg.(
      value
      & flag
      & info [ "verify" ]
          ~doc:
            "Differential check: rerun at $(b,--shards) 1 and fail unless the sharded \
             result is identical (phases, merged metrics, collector stream, RIB sums).")
  in
  let budget =
    Arg.(
      value
      & opt int 20_000_000
      & info [ "budget" ] ~docv:"EVENTS"
          ~doc:
            "Event budget for the load phase (and each measured phase); bounds peak memory \
             and host time at Internet scale.")
  in
  let wall =
    Arg.(
      value
      & opt (some float) None
      & info [ "wall" ] ~docv:"SECONDS"
          ~doc:
            "Host-clock deadline per phase (load / announce / withdrawal).  With batching \
             one delivery event can carry thousands of prefixes, so the event budget alone \
             does not bound wall time; a phase stopped at its deadline counts as unsettled.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH" ~doc:"Also write the sweep as CSV.")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Internet-scale stress: load a synthetic CAIDA graph with prefixes across its \
          stubs, then sweep withdrawal convergence vs centralized member count \
          (top-degree placement).  With $(b,--single), one detailed run reporting \
          update throughput, RIB sizes and heap usage.")
    Term.(
      ret
        (const run $ tier1 $ tier2 $ stubs $ prefixes $ ks $ runs $ seed_arg $ mrai_arg
        $ jobs_arg $ single $ shards $ verify $ budget $ wall $ csv))

(* --- loss ----------------------------------------------------------------- *)

let loss_cmd =
  let run topo n runs seed mrai per_prefix interval_ms jobs verify csv =
    let result =
      let* jobs = resolve_jobs jobs in
      let* build =
        match String.lowercase_ascii (String.trim topo) with
        | "clique" | "failover" ->
          Ok (fun ?pool () ->
              Framework.Experiments.loss_sweep ?pool ~n ~runs ~seed ~per_prefix ~interval_ms
                ~config:(config_of_mrai mrai) ())
        | "caida" ->
          Ok (fun ?pool () ->
              Framework.Experiments.loss_sweep_caida ?pool ~runs ~seed ~per_prefix
                ~interval_ms ~config:(config_of_mrai mrai) ())
        | k -> Error (Fmt.str "unknown loss topology %S (clique|caida)" k)
      in
      let t0 = Unix.gettimeofday () in
      let s = with_optional_pool jobs (fun pool -> build ?pool ()) in
      let wall = Unix.gettimeofday () -. t0 in
      Fmt.pr "%a@." Framework.Experiments.pp_loss_series s;
      Fmt.pr "jobs: %d  wall: %.2f s@." jobs wall;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Framework.Experiments.loss_series_to_csv s);
          close_out oc;
          Fmt.pr "csv written to %s@." path)
        csv;
      if verify then begin
        (* the parallel-vs-sequential differential: rerun on jobs=1 and
           require deep structural equality *)
        let vjobs = max 2 jobs in
        let seq = build () in
        let par =
          if jobs > 1 then s
          else Engine.Pool.with_pool ~jobs:vjobs (fun pool -> build ~pool ())
        in
        if Framework.Experiments.equal_loss_series seq par then begin
          Fmt.pr "deterministic: jobs=%d result identical to sequential@." vjobs;
          Ok ()
        end
        else Error (Fmt.str "parallel (jobs=%d) result differs from sequential run" vjobs)
      end
      else Ok ()
    in
    match result with Ok () -> `Ok () | Error msg -> `Error (false, msg)
  in
  let topo =
    Arg.(
      value
      & opt string "clique"
      & info [ "topo" ] ~docv:"KIND"
          ~doc:
            "clique (the Fig. 2 fail-over clique with a backup chain) or caida (a generated \
             Internet-like graph, failing a multi-homed stub's provider link).")
  in
  let n =
    Arg.(value & opt int 16 & info [ "n"; "size" ] ~docv:"N" ~doc:"Clique size (clique mode).")
  in
  let runs = Arg.(value & opt int 5 & info [ "runs" ] ~docv:"R" ~doc:"Runs per point.") in
  let per_prefix =
    Arg.(
      value
      & opt int 2
      & info [ "per-prefix" ] ~docv:"K" ~doc:"Seeded probe sources per destination prefix.")
  in
  let interval_ms =
    Arg.(
      value
      & opt int 100
      & info [ "interval-ms" ] ~docv:"MS"
          ~doc:"Simulated milliseconds between probe bursts after the failure.")
  in
  let verify =
    Arg.(
      value
      & flag
      & info [ "verify" ]
          ~doc:
            "Differential mode: also run the sweep sequentially and fail unless the \
             parallel result is structurally identical.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"PATH" ~doc:"Write per-run results as CSV.")
  in
  Cmd.v
    (Cmd.info "loss"
       ~doc:
         "Data-plane loss vs centralization: after a link failure, seeded probe bursts \
          against the allocation-free forwarding snapshot measure how long packets are \
          lost, black-holed or looped while BGP re-converges, per SDN membership level.")
    Term.(
      ret
        (const run $ topo $ n $ runs $ seed_arg $ mrai_arg $ per_prefix $ interval_ms
        $ jobs_arg $ verify $ csv))

let () =
  let doc = "hybrid BGP-SDN emulation framework" in
  let info = Cmd.info "hybridsim" ~version:Core.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig2_cmd;
            sweep_cmd;
            run_cmd;
            topo_cmd;
            dot_cmd;
            scenario_cmd;
            export_quagga_cmd;
            demo_cmd;
            chaos_cmd;
            metrics_cmd;
            trace_cmd;
            scale_cmd;
            loss_cmd;
          ]))
