(* Framework.Experiments: scaled-down versions of the paper experiments —
   the same code paths as the bench harness, with small n and few runs. *)

let cfg = Framework.Config.fast_test

let test_fig2_shape () =
  (* 8-AS clique, 0/2/4/6 SDN, 2 runs: median Tdown must decrease with
     the SDN fraction, and the linear fit must slope downward. *)
  let s = Framework.Experiments.fig2_withdrawal ~n:8 ~runs:2 ~seed:3 ~config:cfg () in
  let medians =
    List.map (fun (p : Framework.Experiments.point) -> p.Framework.Experiments.box.Engine.Stats.median)
      s.Framework.Experiments.points
  in
  (match (medians, List.rev medians) with
  | first :: _, last :: _ ->
    Alcotest.(check bool)
      (Fmt.str "monotone trend overall: %.1f .. %.1f" first last)
      true (last < first /. 2.0)
  | _ -> Alcotest.fail "empty sweep");
  let _, slope, r2 = Framework.Experiments.median_trend s in
  Alcotest.(check bool) (Fmt.str "negative slope %.2f" slope) true (slope < 0.0);
  Alcotest.(check bool) (Fmt.str "linear fit r2=%.2f" r2) true (r2 > 0.7)

let test_announcement_fast_and_flat () =
  let s = Framework.Experiments.announcement_sweep ~n:8 ~runs:2 ~seed:5 ~config:cfg () in
  List.iter
    (fun (p : Framework.Experiments.point) ->
      Alcotest.(check bool)
        (Fmt.str "Tup small at x=%.0f" p.Framework.Experiments.x)
        true
        (p.Framework.Experiments.box.Engine.Stats.median < 2.0))
    s.Framework.Experiments.points

let test_failover_completes () =
  let r = Framework.Experiments.failover_run ~n:5 ~sdn:2 ~seed:7 ~config:cfg () in
  Alcotest.(check bool) "failover measured" true (not (Float.is_nan r.Framework.Experiments.seconds));
  Alcotest.(check bool) "positive" true (r.Framework.Experiments.seconds > 0.0)

let test_failover_sweep_runs () =
  let s = Framework.Experiments.failover_sweep ~n:6 ~runs:1 ~seed:9 ~config:cfg () in
  Alcotest.(check bool) "has points" true (List.length s.Framework.Experiments.points >= 2);
  List.iter
    (fun (p : Framework.Experiments.point) ->
      Alcotest.(check bool) "finite medians" true
        (Float.is_finite p.Framework.Experiments.box.Engine.Stats.median))
    s.Framework.Experiments.points

let test_ablation_recompute_delay () =
  let s =
    Framework.Experiments.ablation_recompute_delay ~n:6 ~runs:1 ~seed:11 ~config:cfg
      ~delays_ms:[ 0; 1000 ] ()
  in
  Alcotest.(check int) "two points" 2 (List.length s.Framework.Experiments.points)

let test_ablation_wrate_direction () =
  (* Quagga-style withdrawal pacing (x=1) must converge slower than
     RFC-style exemption (x=0). *)
  let s = Framework.Experiments.ablation_wrate ~n:6 ~runs:2 ~seed:13 ~config:cfg ~sdn:0 () in
  match s.Framework.Experiments.points with
  | [ rfc; quagga ] ->
    Alcotest.(check bool)
      (Fmt.str "rfc %.2f < quagga %.2f" rfc.Framework.Experiments.box.Engine.Stats.median
         quagga.Framework.Experiments.box.Engine.Stats.median)
      true
      (rfc.Framework.Experiments.box.Engine.Stats.median
      < quagga.Framework.Experiments.box.Engine.Stats.median)
  | _ -> Alcotest.fail "expected two points"

let test_placement_strategies () =
  let rng = Engine.Rng.create 91 in
  let spec = Topology.Caida.generate ~tier1:2 ~tier2:4 ~stubs:8 rng in
  let origin = List.hd (Topology.Caida.stub_asns ~tier1:2 ~tier2:4 ~stubs:8) in
  (* top-degree must pick transit ASes, stubs-first must pick stubs *)
  let degree a = List.length (Topology.Spec.neighbors spec a) in
  let top =
    Framework.Experiments.choose_members ~spec ~k:2
      ~placement:Framework.Experiments.Top_degree ~origin ~seed:1
  in
  let bottom =
    Framework.Experiments.choose_members ~spec ~k:2
      ~placement:Framework.Experiments.Stubs_first ~origin ~seed:1
  in
  Alcotest.(check int) "k respected" 2 (List.length top);
  Alcotest.(check bool) "top degree >= stub degree" true
    (List.for_all (fun t -> List.for_all (fun b -> degree t >= degree b) bottom) top);
  Alcotest.(check bool) "origin never selected" true
    (not (List.exists (Net.Asn.equal origin) (top @ bottom)));
  (* a placement run completes and measures *)
  let r =
    Framework.Experiments.placement_run ~spec ~k:2
      ~placement:Framework.Experiments.Top_degree ~origin ~seed:2 ~config:cfg ()
  in
  Alcotest.(check bool) "measured" true (Float.is_finite r.Framework.Experiments.seconds)

let test_churn_run () =
  let quiet =
    Framework.Experiments.clique_run ~n:5 ~sdn:0 ~event:Framework.Experiments.Withdrawal
      ~seed:49 ~config:cfg ()
  in
  let churny =
    Framework.Experiments.churn_run ~n:5 ~sdn:0 ~flap_period_s:2.0 ~seed:49 ~config:cfg ()
  in
  Alcotest.(check bool) "both measured" true
    (Float.is_finite quiet.Framework.Experiments.seconds
    && Float.is_finite churny.Framework.Experiments.seconds);
  Alcotest.(check bool) "churn never speeds convergence up materially" true
    (churny.Framework.Experiments.seconds >= quiet.Framework.Experiments.seconds *. 0.8)

let test_table_size_control () =
  let bare =
    Framework.Experiments.table_size_run ~n:5 ~sdn:0 ~background:0 ~seed:45 ~config:cfg ()
  in
  let loaded =
    Framework.Experiments.table_size_run ~n:5 ~sdn:0 ~background:3 ~seed:45 ~config:cfg ()
  in
  (* same order of magnitude: background prefixes must not explode Tdown *)
  Alcotest.(check bool)
    (Fmt.str "%.1f vs %.1f comparable" bare.Framework.Experiments.seconds
       loaded.Framework.Experiments.seconds)
    true
    (loaded.Framework.Experiments.seconds < 3.0 *. bare.Framework.Experiments.seconds)

let test_scaling_sweep () =
  let s =
    Framework.Experiments.scaling_sweep ~sizes:[ 5; 7 ] ~fraction:0.4 ~runs:1 ~seed:43
      ~config:cfg ()
  in
  match s.Framework.Experiments.points with
  | [ small; large ] ->
    Alcotest.(check bool) "bigger clique converges slower" true
      (large.Framework.Experiments.box.Engine.Stats.median
      > small.Framework.Experiments.box.Engine.Stats.median)
  | _ -> Alcotest.fail "two points expected"

let test_subcluster_resilience () =
  let r = Framework.Experiments.subcluster_resilience ~seed:15 ~config:cfg () in
  Alcotest.(check bool) "reachable before" true r.Framework.Experiments.reachable_before;
  Alcotest.(check bool) "survives split via legacy" true
    r.Framework.Experiments.reachable_after_split;
  Alcotest.(check bool) "path crossed legacy world" true
    r.Framework.Experiments.used_legacy_bridge;
  Alcotest.(check bool) "recovers" true r.Framework.Experiments.reachable_after_recovery

let test_run_results_deterministic () =
  let run () =
    Framework.Experiments.clique_run ~n:5 ~sdn:2 ~event:Framework.Experiments.Withdrawal
      ~seed:17 ~config:cfg ()
  in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-12)) "identical seconds" a.Framework.Experiments.seconds
    b.Framework.Experiments.seconds;
  Alcotest.(check int) "identical changes" a.Framework.Experiments.changes
    b.Framework.Experiments.changes

let test_guards () =
  (match Framework.Experiments.clique_run ~n:4 ~sdn:3 ~event:Framework.Experiments.Withdrawal ~seed:1 ~config:cfg () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sdn too large must raise");
  match Framework.Experiments.clique_run ~n:4 ~sdn:0 ~event:Framework.Experiments.Failover ~seed:1 ~config:cfg () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "failover via clique_run must raise"

let suite =
  [
    Alcotest.test_case "fig2 shape (scaled)" `Slow test_fig2_shape;
    Alcotest.test_case "announcement fast and flat" `Slow test_announcement_fast_and_flat;
    Alcotest.test_case "failover completes" `Quick test_failover_completes;
    Alcotest.test_case "failover sweep" `Slow test_failover_sweep_runs;
    Alcotest.test_case "ablation recompute delay" `Slow test_ablation_recompute_delay;
    Alcotest.test_case "ablation wrate direction" `Quick test_ablation_wrate_direction;
    Alcotest.test_case "placement strategies" `Quick test_placement_strategies;
    Alcotest.test_case "churn coupling" `Quick test_churn_run;
    Alcotest.test_case "table-size control" `Quick test_table_size_control;
    Alcotest.test_case "scaling sweep" `Slow test_scaling_sweep;
    Alcotest.test_case "sub-cluster resilience" `Quick test_subcluster_resilience;
    Alcotest.test_case "determinism" `Quick test_run_results_deterministic;
    Alcotest.test_case "argument guards" `Quick test_guards;
  ]
