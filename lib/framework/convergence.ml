(* Convergence detection.

   The framework's definition (matching the paper's tooling): the network
   has converged for a prefix when no routing state anywhere changes any
   more.  We instrument every decision point — each legacy router's
   Loc-RIB and each controller member decision — plus the route
   collector's update stream, and record the last change time per prefix.
   Because the emulation is a discrete-event simulation, "no more events"
   is an exact quiet-period test: [Network.settle] drains the queue and
   the convergence time is simply the last recorded change.

   Attach the watcher *before* running the phase being measured. *)

module Pm = Net.Ipv4.Prefix_map

type t = {
  mutable last_control_change : Engine.Time.t Pm.t; (* loc-rib / decisions *)
  mutable last_collector_update : Engine.Time.t Pm.t;
  mutable control_changes : int Pm.t;
  mutable last_any : Engine.Time.t; (* latest control change, any prefix *)
  network : Network.t;
}

let bump_map time prefix m = Pm.add prefix time m

let attach network =
  let t =
    {
      last_control_change = Pm.empty;
      last_collector_update = Pm.empty;
      control_changes = Pm.empty;
      last_any = Engine.Time.zero;
      network;
    }
  in
  let m = Engine.Sim.metrics (Network.sim network) in
  let changes_c =
    Engine.Metrics.counter m ~help:"control-plane changes observed (any prefix)"
      "convergence_control_changes_total"
  in
  let last_change_g =
    Engine.Metrics.gauge m ~help:"simulated time of the last control-plane change"
      "convergence_last_change_seconds"
  in
  let note prefix =
    let now = Engine.Sim.now (Network.sim network) in
    t.last_control_change <- bump_map now prefix t.last_control_change;
    t.last_any <- now;
    Engine.Metrics.Counter.inc changes_c;
    Engine.Metrics.Gauge.set last_change_g (Engine.Time.to_sec_f now);
    t.control_changes <-
      Pm.update prefix (fun c -> Some (1 + Option.value c ~default:0)) t.control_changes
  in
  Net.Asn.Map.iter
    (fun _ router -> Bgp.Router.subscribe_best_change router (fun prefix _ -> note prefix))
    (Network.routers network);
  (match Network.controller network with
  | Some ctrl ->
    Cluster_ctl.Controller.subscribe_decision_change ctrl (fun prefix _ _ -> note prefix)
  | None -> ());
  t

(* Refresh collector-derived timestamps (pull, not push).  Reads the
   collector's maintained per-prefix last-update instants — available
   under every retention mode — rather than rescanning the event log. *)
let refresh_collector t =
  let collector = Network.collector t.network in
  List.iter
    (fun (prefix, time) ->
      let current = Pm.find_opt prefix t.last_collector_update in
      let better =
        match current with None -> true | Some c -> Engine.Time.(time > c)
      in
      if better then
        t.last_collector_update <- bump_map time prefix t.last_collector_update)
    (Bgp.Collector.last_updates collector)

let last_control_change t prefix = Pm.find_opt prefix t.last_control_change

let last_collector_update t prefix =
  refresh_collector t;
  Pm.find_opt prefix t.last_collector_update

let control_changes t prefix = Option.value (Pm.find_opt prefix t.control_changes) ~default:0

(* Convergence time of an event on a prefix: run the network to
   quiescence, then report the interval from [event_time] to the last
   control-plane change for the prefix.  [None] if nothing changed after
   the event (e.g. the event was a no-op). *)
type measurement = {
  prefix : Net.Ipv4.prefix;
  event_time : Engine.Time.t;
  settled_at : Engine.Time.t;
  last_change : Engine.Time.t option;
  convergence : Engine.Time.span option;
  changes : int;
}

let measure ?(max_events = 10_000_000) ?changes_before t ~prefix ~event_time =
  let changes_before =
    match changes_before with Some c -> c | None -> control_changes t prefix
  in
  let settled_at = Network.settle ~max_events t.network in
  let last_change =
    match last_control_change t prefix with
    | Some time when Engine.Time.(time >= event_time) -> Some time
    | Some _ | None -> None
  in
  let convergence = Option.map (fun c -> Engine.Time.diff c event_time) last_change in
  {
    prefix;
    event_time;
    settled_at;
    last_change;
    convergence;
    changes = control_changes t prefix - changes_before;
  }

(* Quiet-period convergence waiting: advance the simulation in [step]
   increments until no control-plane change has occurred for [quiet].
   This is the detection mode for experiments whose event queue never
   drains (periodic keepalives, endless probe streams) — the analogue of
   the original framework's "wait until BGP has converged" command. *)
let wait_quiet ?(step = Engine.Time.sec 1) ?(max_wait = Engine.Time.sec 7200) ~quiet t =
  let sim = Network.sim t.network in
  let deadline = Engine.Time.add (Engine.Sim.now sim) max_wait in
  let rec loop () =
    let now = Engine.Sim.now sim in
    let quiet_for = Engine.Time.diff now (Engine.Time.max t.last_any Engine.Time.zero) in
    if Engine.Time.(quiet_for >= quiet) then `Quiet now
    else if Engine.Time.(now >= deadline) then `Timeout now
    else begin
      match Engine.Sim.run ~until:(Engine.Time.add now step) sim with
      | Engine.Sim.Exhausted -> `Quiet (Engine.Sim.now sim)
      | Engine.Sim.Reached_time _ | Engine.Sim.Reached_limit -> loop ()
    end
  in
  loop ()

let last_any_change t = t.last_any

let pp_measurement ppf m =
  Fmt.pf ppf "event@%a settled@%a convergence=%a changes=%d" Engine.Time.pp m.event_time
    Engine.Time.pp m.settled_at
    (Fmt.option ~none:(Fmt.any "none") Engine.Time.pp_span)
    m.convergence m.changes
