(** Canned experiments reproducing the paper's evaluation, parameterized
    so tests can run scaled-down instances of the bench's exact code
    paths.

    Every sweep takes an optional [?pool] ({!Engine.Pool.t}): when given,
    the independent [(x, trial)] runs of the sweep are dispatched across
    the pool's domains.  Each run owns its whole mutable world (its
    [Experiment], and through it its [Sim], [Metrics] registry, [Rng]
    streams and [Trace]), and results are collected in deterministic
    (x, trial-index) order — so parallel output is bit-identical to the
    sequential run ([?pool] absent, or [jobs = 1]). *)

type event_kind = Withdrawal | Announcement | Failover

val event_to_string : event_kind -> string

type run_result = {
  seconds : float;  (** convergence time of the measured event *)
  changes : int;  (** control-plane best-route changes during it *)
  collector_updates : int;
      (** updates seen by the route collector during the measured event
          (for withdrawal runs: the withdrawal phase only, excluding the
          bootstrap announcement) *)
  restore_mean : float;  (** mean per-AS data-plane restoration (failover) *)
  restore_max : float;
  metrics : Engine.Metrics.snapshot;  (** whole-stack telemetry at run end *)
}

type point = { x : float; results : run_result list; box : Engine.Stats.boxplot }

type series = { label : string; points : point list }

val clique_run :
  n:int -> sdn:int -> event:event_kind -> seed:int -> config:Config.t -> unit -> run_result
(** One convergence measurement on an [n]-clique with [sdn] centralized
    ASes (the origin stays legacy).
    @raise Invalid_argument for [Failover] (use {!failover_run}). *)

val failover_run : n:int -> sdn:int -> seed:int -> config:Config.t -> unit -> run_result
(** Primary-link failure with a longer backup chain; also measures per-AS
    data-plane restoration. *)

val fig2_withdrawal :
  ?pool:Engine.Pool.t -> ?n:int -> ?runs:int -> ?seed:int -> ?config:Config.t -> unit -> series
(** The paper's Fig. 2 sweep: withdrawal convergence vs SDN fraction. *)

val announcement_sweep :
  ?pool:Engine.Pool.t -> ?n:int -> ?runs:int -> ?seed:int -> ?config:Config.t -> unit -> series

val failover_sweep :
  ?pool:Engine.Pool.t -> ?n:int -> ?runs:int -> ?seed:int -> ?config:Config.t -> unit -> series

val ablation_recompute_delay :
  ?pool:Engine.Pool.t ->
  ?n:int ->
  ?runs:int ->
  ?seed:int ->
  ?config:Config.t ->
  ?delays_ms:int list ->
  unit ->
  series

val ablation_mrai :
  ?pool:Engine.Pool.t ->
  ?n:int ->
  ?runs:int ->
  ?seed:int ->
  ?config:Config.t ->
  ?mrai_s:int list ->
  sdn:int ->
  unit ->
  series

val ablation_wrate :
  ?pool:Engine.Pool.t ->
  ?n:int ->
  ?runs:int ->
  ?seed:int ->
  ?config:Config.t ->
  sdn:int ->
  unit ->
  series
(** RFC-exempt (x=0) vs Quagga-paced (x=1) withdrawals. *)

val scaling_sweep :
  ?pool:Engine.Pool.t ->
  ?sizes:int list ->
  ?fraction:float ->
  ?runs:int ->
  ?seed:int ->
  ?config:Config.t ->
  unit ->
  series
(** Withdrawal convergence vs clique size at a fixed SDN fraction. *)

val churn_run :
  n:int -> sdn:int -> flap_period_s:float -> seed:int -> config:Config.t -> unit -> run_result
(** Withdrawal convergence while an unrelated AS flaps its prefix: per-peer
    MRAI timers couple the measured prefix to the background churn. *)

(** Deployment-placement strategies for heterogeneous topologies. *)
type placement = Top_degree | Random_choice | Stubs_first

val placement_to_string : placement -> string

val choose_members :
  spec:Topology.Spec.t ->
  k:int ->
  placement:placement ->
  origin:Net.Asn.t ->
  seed:int ->
  Net.Asn.t list

val placement_run :
  spec:Topology.Spec.t ->
  k:int ->
  placement:placement ->
  origin:Net.Asn.t ->
  seed:int ->
  config:Config.t ->
  unit ->
  run_result

val placement_sweep :
  ?pool:Engine.Pool.t ->
  ?tier1:int ->
  ?tier2:int ->
  ?stubs:int ->
  ?ks:int list ->
  ?runs:int ->
  ?seed:int ->
  ?config:Config.t ->
  placement:placement ->
  unit ->
  series
(** Withdrawal convergence vs cluster size on a synthetic Internet-like
    topology, for one placement strategy. *)

val table_size_run :
  n:int -> sdn:int -> background:int -> seed:int -> config:Config.t -> unit -> run_result
(** Negative control: withdrawal convergence with [background] unrelated
    prefixes installed everywhere — should be table-size independent. *)

type scale_result = {
  ases : int;
  links : int;
  prefixes : int;
  sdn_members : int;
  load_updates : int;  (** collector-recorded updates during the load phase *)
  load_seconds : float;  (** host seconds spent in the load phase *)
  updates_per_sec : float;
  load_settled : bool;
      (** the load phase reached quiescence within its event budget *)
  withdrawal : run_result;  (** the measured withdrawal after the load *)
  rib_routes : int;  (** Loc-RIB entries summed over legacy routers *)
  adj_in_routes : int;  (** Adj-RIB-In entries summed over legacy routers *)
  live_words : int;  (** major-heap live words at end of run *)
  peak_words : int;  (** [Gc.top_heap_words] over the whole run *)
  distinct_attrs : int;  (** interned attribute sets (domain-local table) *)
}

val scale_prefix : int -> Net.Ipv4.prefix
(** The [m]-th synthetic load prefix (101.0.0.0/24 onward), disjoint from
    the addressing plan's origin prefixes. *)

val scale_shard_run :
  ?tier1:int ->
  ?tier2:int ->
  ?stubs:int ->
  ?prefixes:int ->
  ?sdn:int ->
  ?load_max_events:int ->
  ?shards:int ->
  ?clock:(unit -> float) ->
  seed:int ->
  config:Config.t ->
  unit ->
  scale_result * Sharding.result
(** The sharded twin of {!scale_run}: the same CAIDA load, announce and
    withdrawal executed through {!Sharding} as three driver phases across
    [shards] domains (default 1).  Returns the [scale_result] view plus
    the raw {!Sharding.result} (partition, per-shard stats, and the
    deterministic signature compared by the shards=N-vs-1 differential,
    {!Sharding.equal_result}).  Sharded runs are bit-comparable across
    shard counts through this function, not against the phase-timing of
    the unsharded path.  [load_max_events] bounds the whole run's real
    event count; a run it stops reports [load_settled = false] and/or a
    truncated phase list. *)

val scale_run :
  ?tier1:int ->
  ?tier2:int ->
  ?stubs:int ->
  ?prefixes:int ->
  ?sdn:int ->
  ?load_max_events:int ->
  ?phase_wall_s:float ->
  ?clock:(unit -> float) ->
  ?shards:int ->
  seed:int ->
  config:Config.t ->
  unit ->
  scale_result
(** Internet-scale stress: a synthetic CAIDA graph loaded with [prefixes]
    origins spread round-robin across its stubs (event budget
    [load_max_events]; [load_settled] reports whether propagation in fact
    quiesced), then one measured announce + withdrawal of the origin
    stub's own prefix.  [sdn] centralizes that many top-degree ASes.  The
    collector runs in [Counts_only] retention.  [clock] supplies host
    time for the throughput figures (default [Sys.time]; pass
    [Unix.gettimeofday] for wall clock).  [phase_wall_s] adds a
    host-clock deadline per phase (load / announce / withdrawal): at
    Internet scale one batched delivery can carry thousands of prefixes,
    so an event budget alone cannot bound wall time; a phase stopped at
    its deadline counts as unsettled.

    [shards] switches to the sharded execution path
    ({!scale_shard_run}); [phase_wall_s] is rejected there. *)

val scale_sweep :
  ?pool:Engine.Pool.t ->
  ?tier1:int ->
  ?tier2:int ->
  ?stubs:int ->
  ?prefixes:int ->
  ?ks:int list ->
  ?runs:int ->
  ?seed:int ->
  ?config:Config.t ->
  unit ->
  series
(** The convergence-vs-centralization curve at scale: withdrawal
    convergence on a loaded CAIDA graph vs centralized member count
    (top-degree placement). *)

type flap_result = {
  collector_updates_total : int;
  recovery_seconds : float;
  suppressions_total : int;
  blackholed_after_storm : int;
}

val flap_run :
  ?n:int ->
  ?flaps:int ->
  ?gap_s:float ->
  damping:bool ->
  seed:int ->
  config:Config.t ->
  unit ->
  flap_result
(** A flapping origin with or without RFC 2439 damping at the receivers:
    damping trades monitoring-plane churn for recovery latency. *)

type subcluster_result = {
  reachable_before : bool;
  reachable_after_split : bool;
  reachable_after_recovery : bool;
  used_legacy_bridge : bool;
}

val subcluster_resilience : ?seed:int -> ?config:Config.t -> unit -> subcluster_result
(** Two SDN islands lose their intra-cluster bridge and must reach each
    other over the legacy world (the paper's design goal 3). *)

val equal_run_result : run_result -> run_result -> bool
(** Structural equality, NaN-tolerant ([Stdlib.compare]-based). *)

val equal_series : series -> series -> bool
(** Deep structural equality of a whole sweep — per-run results, metrics
    snapshots and boxplots included; the parallel-vs-sequential
    differential check. *)

val pp_series : Format.formatter -> series -> unit

val series_to_csv : series -> string
(** One row per (point, run): label,x,run,seconds,changes,collector_updates. *)

val median_trend : series -> float * float * float
(** (intercept, slope, r²) of the least-squares line through the medians
    — the Fig. 2 "linear reduction" check. *)

(* --- Data-plane loss under convergence ---------------------------------- *)

type loss_result = {
  converge_seconds : float;  (** control-plane convergence of the event *)
  loss_seconds : float;  (** event to first loss-free probe burst *)
  blackhole_seconds : float;  (** event to last burst with a black-holed probe *)
  loop_seconds : float;  (** event to last burst with a looping probe *)
  probes : int;  (** post-event probes injected *)
  lost : int;  (** post-event probes not delivered *)
  max_loss_ratio : float;  (** worst single-burst loss fraction *)
  residual_issues : int;  (** {!Fwd_verify} non-delivered pairs at run end *)
  loss_epochs : Trafficgen.epoch list;  (** post-event bursts, oldest first *)
}

val loss_run :
  ?per_prefix:int ->
  ?interval_ms:int ->
  ?cap_s:float ->
  n:int ->
  sdn:int ->
  seed:int ->
  config:Config.t ->
  unit ->
  loss_result
(** One measured loss run on the fail-over topology: the stub's primary
    path dies, probe bursts ([per_prefix] seeded sources per prefix,
    every [interval_ms] of simulated time) classify the data plane until
    a burst comes back loss-free or [cap_s] passes (censored). *)

type loss_point = { lp_x : float; lp_results : loss_result list }

type loss_series = { ls_label : string; ls_points : loss_point list }

val loss_sweep :
  ?pool:Engine.Pool.t ->
  ?n:int ->
  ?runs:int ->
  ?seed:int ->
  ?per_prefix:int ->
  ?interval_ms:int ->
  ?config:Config.t ->
  unit ->
  loss_series
(** Fig. 2's companion curve: loss / black-hole / loop duration vs SDN
    membership on the fail-over clique.  Runs dispatch through [pool]
    when given; output is bit-identical to the sequential sweep. *)

val loss_sweep_caida :
  ?pool:Engine.Pool.t ->
  ?tier1:int ->
  ?tier2:int ->
  ?stubs:int ->
  ?ks:int list ->
  ?runs:int ->
  ?seed:int ->
  ?per_prefix:int ->
  ?interval_ms:int ->
  ?config:Config.t ->
  unit ->
  loss_series
(** The same curve on a generated CAIDA graph: the origin is a
    multi-homed stub, the failed link its first provider, members placed
    top-degree. *)

val equal_loss_series : loss_series -> loss_series -> bool
(** Structural equality — the parallel-vs-sequential differential. *)

val pp_loss_series : Format.formatter -> loss_series -> unit

val loss_series_to_csv : loss_series -> string
(** One row per (point, run) for external plotting. *)
