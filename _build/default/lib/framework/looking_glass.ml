(* Looking glass: human-readable state dumps — the "show ip bgp" /
   "show flows" surface an experimenter pokes at between scenario steps. *)

let buffer_with f = Fmt.str "%t" f

(* "show ip bgp" for one emulated AS router. *)
let router_rib router =
  buffer_with (fun ppf ->
      Fmt.pf ppf "%s  loc-rib (%d prefixes, adj-in %d routes)@."
        (Bgp.Router.name router) (Bgp.Router.loc_size router)
        (Bgp.Router.adj_in_size router);
      List.iter
        (fun (prefix, route) ->
          let attrs = Bgp.Route.attrs route in
          Fmt.pf ppf "  %-18s via %-12s lp=%-3d path [%a]@."
            (Net.Ipv4.prefix_to_string prefix)
            (match Bgp.Route.from_peer route with
            | Some p -> Net.Asn.to_string p
            | None -> "local")
            attrs.Bgp.Attrs.local_pref Bgp.Attrs.pp_path (Bgp.Attrs.as_path attrs);
          (* alternates, best first *)
          let alternates =
            List.filter
              (fun r -> Bgp.Route.source r <> Bgp.Route.source route)
              (Bgp.Router.candidates router prefix)
          in
          List.iter
            (fun r ->
              Fmt.pf ppf "    alt via %-12s path [%a]@."
                (match Bgp.Route.from_peer r with
                | Some p -> Net.Asn.to_string p
                | None -> "local")
                Bgp.Attrs.pp_path
                (Bgp.Attrs.as_path (Bgp.Route.attrs r)))
            alternates)
        (Bgp.Router.loc_entries router))

(* Flow table of an SDN member's switch. *)
let switch_flows sw =
  buffer_with (fun ppf ->
      let table = Sdn.Switch.table sw in
      let stats = Sdn.Switch.stats sw in
      Fmt.pf ppf "%s  flow table (%d rules; fwd=%d punted=%d dropped=%d)@."
        (Net.Asn.to_string (Sdn.Switch.asn sw))
        (Sdn.Flow_table.size table) stats.Sdn.Switch.forwarded stats.Sdn.Switch.to_controller
        stats.Sdn.Switch.dropped;
      List.iter
        (fun rule -> Fmt.pf ppf "  %a@." Sdn.Flow.pp rule)
        (Sdn.Flow_table.entries_sorted table))

(* The controller's per-prefix decisions and sub-cluster view. *)
let controller_state ctrl =
  buffer_with (fun ppf ->
      let g = Cluster_ctl.Controller.switch_graph ctrl in
      let stats = Cluster_ctl.Controller.stats ctrl in
      Fmt.pf ppf
        "controller  members=%d sub-clusters=%d updates-in=%d recomputes=%d flow-mods=%d@."
        (List.length (Cluster_ctl.Controller.members ctrl))
        (List.length (Net.Graph.components g))
        stats.Cluster_ctl.Controller.updates_in stats.Cluster_ctl.Controller.recompute_batches
        stats.Cluster_ctl.Controller.flow_mods;
      List.iter
        (fun prefix ->
          Fmt.pf ppf "  %s@." (Net.Ipv4.prefix_to_string prefix);
          Net.Asn.Map.iter
            (fun _ d -> Fmt.pf ppf "    %a@." Cluster_ctl.As_graph.pp_decision d)
            (Cluster_ctl.Controller.decisions_for ctrl prefix))
        (Cluster_ctl.Controller.known_prefixes ctrl))

(* Everything: the full network's control- and data-plane state. *)
let network_state network =
  buffer_with (fun ppf ->
      Fmt.pf ppf "=== looking glass at %a ===@." Engine.Time.pp (Network.now network);
      Net.Asn.Map.iter
        (fun _ router -> Fmt.pf ppf "%s" (router_rib router))
        (Network.routers network);
      List.iter
        (fun asn ->
          match Network.switch network asn with
          | Some sw -> Fmt.pf ppf "%s" (switch_flows sw)
          | None -> ())
        (Network.sdn_asns network);
      (match Network.controller network with
      | Some ctrl -> Fmt.pf ppf "%s" (controller_state ctrl)
      | None -> ());
      let collector = Network.collector network in
      Fmt.pf ppf "collector  %d updates recorded@." (Bgp.Collector.event_count collector))
